#include "core/checker.hpp"

#include <algorithm>
#include <tuple>

namespace tv {

namespace {

// Length of the steady run starting at `from` (capped at `cap` ps).
Time steady_run_from(const Waveform& w, Time from, Time cap) {
  if (cap <= 0) return 0;
  if (cap > w.period()) cap = w.period();
  Time len = 0;
  while (len < cap) {
    // Find the segment containing (from + len) and extend over it.
    Time t = floor_mod(from + len, w.period());
    Time acc = 0;
    for (const auto& s : w.segments()) {
      if (t < acc + s.width) {
        if (!is_steady(s.value)) return len;
        len += (acc + s.width) - t;
        break;
      }
      acc += s.width;
    }
  }
  return std::min(len, cap);
}

// Length of the steady run ending at `until` (capped at `cap`), i.e. how
// much set-up margin the data actually provided before the clock edge.
Time steady_run_until(const Waveform& w, Time until, Time cap) {
  if (cap <= 0) return 0;
  if (cap > w.period()) cap = w.period();
  Time settle = 0;
  if (!w.settles(until - cap, until, settle)) return 0;
  Time avail = floor_mod(until - settle, w.period());
  if (avail == 0) avail = cap;  // steady across the full (clamped) window
  return std::min(avail, cap);
}

struct CheckContext {
  const EvalView& ev;
  const Netlist& nl;
  std::vector<Violation>& out;

  const Signal& sig_of(const Pin& pin) const { return nl.signal(pin.sig); }

  std::string describe(const char* role, const Pin& pin, const Waveform& w) const {
    std::string s = "  ";
    s += role;
    s += " = ";
    s += sig_of(pin).full_name;
    s += "   ";
    s += w.to_string();
    s += "\n";
    return s;
  }

  void add(Violation::Type type, const Primitive& p, PrimId pid, SignalId sig, Time missed,
           std::string detail) {
    Violation v;
    v.type = type;
    v.prim = pid;
    v.signal = sig;
    v.missed_by = missed;
    v.message = violation_type_name(type) + " ERROR: " + p.name + ": " + std::move(detail);
    out.push_back(std::move(v));
  }
};

void check_setup_hold(CheckContext& ctx, PrimId pid) {
  const Primitive& p = ctx.nl.prim(pid);
  PreparedInput data_in = ctx.ev.prepare(p.inputs[0]);
  PreparedInput ck_in = ctx.ev.prepare(p.inputs[1]);
  Waveform data = data_in.wave.with_skew_incorporated();
  Waveform ck = ck_in.wave.with_skew_incorporated();

  std::string waves = ctx.describe("DATA INPUT ", p.inputs[0], data) +
                      ctx.describe("CLOCK INPUT", p.inputs[1], ck);
  char hdr[160];

  for (const EdgeWindow& e : edge_windows(ck, /*rising=*/true)) {
    // Set-up: the input must already be steady `setup` before the earliest
    // possible rising edge (Fig 2-3; the Fig 3-11 report measures the miss
    // from the required stable time).
    if (p.setup > 0) {
      Time avail = steady_run_until(data, e.start, p.setup);
      if (avail < p.setup) {
        Time missed = p.setup - avail;
        std::snprintf(hdr, sizeof hdr,
                      "SETUP TIME = %s, HOLD TIME = %s, SETUP TIME MISSED BY %s\n",
                      format_ns(p.setup).c_str(), format_ns(p.hold).c_str(),
                      format_ns(missed).c_str());
        ctx.add(Violation::Type::Setup, p, pid, p.inputs[0].sig, missed, hdr + waves);
      }
    }
    // The input must not move during the edge uncertainty window itself
    // (the window may wrap: width computed circularly).
    Time edge_width = floor_mod(e.end - e.start, ck.period());
    if (edge_width > 0 && !data.steady_over(e.start, e.start + edge_width + 1)) {
      std::snprintf(hdr, sizeof hdr, "DATA CHANGING DURING CLOCK EDGE WINDOW %s-%s\n",
                    format_ns(e.start).c_str(), format_ns(e.end).c_str());
      ctx.add(Violation::Type::Setup, p, pid, p.inputs[0].sig, p.setup, hdr + waves);
    }
    // Hold: steady for `hold` after the latest possible edge. A negative
    // hold time (register-file data sheets) needs no check.
    if (p.hold > 0) {
      Time avail = steady_run_from(data, e.end, p.hold);
      if (avail < p.hold) {
        Time missed = p.hold - avail;
        std::snprintf(hdr, sizeof hdr,
                      "SETUP TIME = %s, HOLD TIME = %s, HOLD TIME MISSED BY %s\n",
                      format_ns(p.setup).c_str(), format_ns(p.hold).c_str(),
                      format_ns(missed).c_str());
        ctx.add(Violation::Type::Hold, p, pid, p.inputs[0].sig, missed, hdr + waves);
      }
    }
  }
}

void check_setup_rise_hold_fall(CheckContext& ctx, PrimId pid) {
  const Primitive& p = ctx.nl.prim(pid);
  PreparedInput data_in = ctx.ev.prepare(p.inputs[0]);
  PreparedInput ck_in = ctx.ev.prepare(p.inputs[1]);
  Waveform data = data_in.wave.with_skew_incorporated();
  Waveform ck = ck_in.wave.with_skew_incorporated();
  std::string waves = ctx.describe("DATA INPUT ", p.inputs[0], data) +
                      ctx.describe("CLOCK INPUT", p.inputs[1], ck);
  char hdr[160];

  std::vector<EdgeWindow> rises = edge_windows(ck, true);
  std::vector<EdgeWindow> falls = edge_windows(ck, false);

  for (const EdgeWindow& r : rises) {
    if (p.setup > 0) {
      Time avail = steady_run_until(data, r.start, p.setup);
      if (avail < p.setup) {
        Time missed = p.setup - avail;
        std::snprintf(hdr, sizeof hdr, "SETUP TIME = %s, SETUP TIME MISSED BY %s\n",
                      format_ns(p.setup).c_str(), format_ns(missed).c_str());
        ctx.add(Violation::Type::Setup, p, pid, p.inputs[0].sig, missed, hdr + waves);
      }
    }
    // Stable for the entire interval the clock is (possibly) true: from the
    // start of this rising window to the end of the next falling window.
    if (!falls.empty()) {
      const EdgeWindow* f = nullptr;
      Time best = ck.period() + 1;
      for (const EdgeWindow& cand : falls) {
        Time d = floor_mod(cand.end - r.start, ck.period());
        if (d != 0 && d < best) {
          best = d;
          f = &cand;
        }
      }
      if (f && !data.steady_over(r.start, r.start + best + 1)) {
        std::snprintf(hdr, sizeof hdr, "INPUT NOT STABLE WHILE CLOCK TRUE (%s-%s)\n",
                      format_ns(r.start).c_str(), format_ns(f->end).c_str());
        ctx.add(Violation::Type::StableWhileHigh, p, pid, p.inputs[0].sig, 0, hdr + waves);
      }
    }
  }
  if (p.hold > 0) {
    for (const EdgeWindow& f : falls) {
      Time avail = steady_run_from(data, f.end, p.hold);
      if (avail < p.hold) {
        Time missed = p.hold - avail;
        std::snprintf(hdr, sizeof hdr, "HOLD TIME = %s, HOLD TIME MISSED BY %s\n",
                      format_ns(p.hold).c_str(), format_ns(missed).c_str());
        ctx.add(Violation::Type::Hold, p, pid, p.inputs[0].sig, missed, hdr + waves);
      }
    }
  }
}

void check_min_pulse_width(CheckContext& ctx, PrimId pid) {
  const Primitive& p = ctx.nl.prim(pid);
  PreparedInput in = ctx.ev.prepare(p.inputs[0]);
  // Pulse widths are measured on the value list with the skew field left
  // separate: a variable delay moves both edges of a pulse by the same
  // amount, so the width is preserved (sec. 2.8 keeps skew separate
  // precisely "to avoid incorrect assertions ... that minimum pulse width
  // requirements have not been met"). Skew that was folded into the list by
  // an earlier combination appears as R/F/C values and conservatively
  // shortens the solid runs, as it must.
  const Waveform& w = in.wave;
  if (w.is_constant()) return;
  std::string wave_desc = ctx.describe("INPUT", p.inputs[0], w);
  char hdr[160];

  // Collect maximal circular runs of each level.
  struct Run {
    Value v;
    Time width;
  };
  std::vector<Run> runs;
  for (const auto& s : w.segments()) runs.push_back(Run{s.value, s.width});
  if (runs.size() > 1 && runs.front().v == runs.back().v) {
    runs.front().width += runs.back().width;
    runs.pop_back();
  }
  for (const Run& r : runs) {
    if (r.v == Value::One && p.min_high > 0 && r.width < p.min_high) {
      Time missed = p.min_high - r.width;
      std::snprintf(hdr, sizeof hdr,
                    "MINIMUM HIGH PULSE WIDTH = %s, PULSE OF %s, MISSED BY %s\n",
                    format_ns(p.min_high).c_str(), format_ns(r.width).c_str(),
                    format_ns(missed).c_str());
      ctx.add(Violation::Type::MinPulseHigh, p, pid, p.inputs[0].sig, missed, hdr + wave_desc);
    }
    if (r.v == Value::Zero && p.min_low > 0 && r.width < p.min_low) {
      Time missed = p.min_low - r.width;
      std::snprintf(hdr, sizeof hdr,
                    "MINIMUM LOW PULSE WIDTH = %s, PULSE OF %s, MISSED BY %s\n",
                    format_ns(p.min_low).c_str(), format_ns(r.width).c_str(),
                    format_ns(missed).c_str());
      ctx.add(Violation::Type::MinPulseLow, p, pid, p.inputs[0].sig, missed, hdr + wave_desc);
    }
  }
}

// "&A"/"&H" hazard checks (sec. 2.6): the other inputs of the gate must be
// stable whenever the directive-carrying (clock) input is asserted.
void check_hazard_directives(CheckContext& ctx, PrimId pid) {
  const Primitive& p = ctx.nl.prim(pid);
  if (prim_is_checker(p.kind)) return;
  for (std::size_t i = 0; i < p.inputs.size(); ++i) {
    PreparedInput clk = ctx.ev.prepare(p.inputs[i]);
    if (!clk.has_directive_string) continue;
    if (clk.directive != 'A' && clk.directive != 'H') continue;
    Waveform ck = clk.wave.with_skew_incorporated();

    // Asserted regions: any time the clock may be non-zero.
    Time acc = 0;
    struct Region {
      Time begin, width;
    };
    std::vector<Region> regions;
    for (const auto& s : ck.segments()) {
      if (s.value != Value::Zero && s.value != Value::Unknown) {
        regions.push_back(Region{acc, s.width});
      }
      acc += s.width;
    }
    // Merge adjacent asserted segments (e.g. R then 1 then F).
    std::vector<Region> merged;
    for (const Region& r : regions) {
      if (!merged.empty() && merged.back().begin + merged.back().width == r.begin) {
        merged.back().width += r.width;
      } else {
        merged.push_back(r);
      }
    }
    if (merged.size() > 1 && merged.front().begin == 0 &&
        merged.back().begin + merged.back().width == ck.period()) {
      merged.back().width += merged.front().width;
      merged.erase(merged.begin());
    }

    for (std::size_t j = 0; j < p.inputs.size(); ++j) {
      if (j == i) continue;
      PreparedInput other = ctx.ev.prepare(p.inputs[j]);
      Waveform ow = other.wave.with_skew_incorporated();
      for (const Region& r : merged) {
        if (!ow.steady_over(r.begin, r.begin + r.width)) {
          char hdr[200];
          std::snprintf(hdr, sizeof hdr,
                        "CONTROL SIGNAL NOT STABLE WHILE CLOCK ASSERTED (%s-%s)\n",
                        format_ns(r.begin).c_str(),
                        format_ns(floor_mod(r.begin + r.width, ck.period())).c_str());
          std::string msg = hdr + ctx.describe("CLOCK INPUT  ", p.inputs[i], ck) +
                            ctx.describe("CONTROL INPUT", p.inputs[j], ow);
          ctx.add(Violation::Type::Hazard, p, pid, p.inputs[j].sig, 0, std::move(msg));
          break;  // one report per control input
        }
      }
    }
  }
}

// Stable assertions on generated signals are *checked* against the computed
// waveform (sec. 2.5.2): "the designer's initial timing assertion is checked
// against the timing of the actual signal".
void check_stable_assertion(CheckContext& ctx, SignalId id) {
  const Signal& s = ctx.nl.signal(id);
  if (s.assertion.kind != Assertion::Kind::Stable || s.driver == kNoPrim) return;
  Waveform required = assertion_waveform(s.assertion, ctx.ev.options().period,
                                         ctx.ev.options().units);
  Waveform actual = ctx.ev.wave(id).with_skew_incorporated();
  Time acc = 0;
  for (const auto& seg : required.segments()) {
    if (seg.value == Value::Stable && !actual.steady_over(acc, acc + seg.width)) {
      Violation v;
      v.type = Violation::Type::StableAssertionViolated;
      v.prim = s.driver;
      v.signal = id;
      v.message = violation_type_name(v.type) + " ERROR: signal " + s.full_name +
                  " asserted stable " + format_ns(acc) + "-" +
                  format_ns(floor_mod(acc + seg.width, actual.period())) +
                  " but computed value is\n  " + actual.to_string() + "\n";
      ctx.out.push_back(std::move(v));
      break;
    }
    acc += seg.width;
  }
}

void check_prim(CheckContext& ctx, PrimId pid) {
  switch (ctx.nl.prim(pid).kind) {
    case PrimKind::SetupHoldChk: check_setup_hold(ctx, pid); break;
    case PrimKind::SetupRiseHoldFallChk: check_setup_rise_hold_fall(ctx, pid); break;
    case PrimKind::MinPulseWidthChk: check_min_pulse_width(ctx, pid); break;
    default: check_hazard_directives(ctx, pid); break;
  }
}

void add_unconverged(std::vector<Violation>& out) {
  Violation v;
  v.type = Violation::Type::Unconverged;
  v.message = "EVALUATION NOT CONVERGED: unclocked feedback path suspected\n";
  out.push_back(std::move(v));
}

// Watches the run-wide deadline across one checking pass: checks are
// skipped (and counted) once the deadline expires, and the skip count
// becomes one TV-W204 degradation record. Unlike evaluation's UNKNOWN
// degradation, a skipped check can hide a violation -- which is exactly why
// the record exists and the result is marked partial.
class CheckDeadline {
 public:
  explicit CheckDeadline(const VerifierOptions& opts)
      : deadline_(opts.deadline), limit_(opts.time_limit_seconds) {
    if (!deadline_.armed() && limit_ > 0) {
      deadline_ = Deadline::after_seconds(limit_);
    }
  }

  /// True when this check must be skipped (deadline expired). The first
  /// expired poll latches, so later polls cost nothing.
  bool skip() {
    if (expired_) {
      ++skipped_;
      return true;
    }
    if (deadline_.armed() && deadline_.expired()) {
      expired_ = true;
      ++skipped_;
      return true;
    }
    return false;
  }

  void flush(std::vector<Degradation>* degradations) const {
    if (skipped_ == 0 || !degradations) return;
    degradations->push_back(Degradation{
        diag::kWarnCheckDeadline,
        "time limit of " + std::to_string(limit_) +
            "s exceeded during constraint checking; " + std::to_string(skipped_) +
            " check(s) skipped (result partial)"});
  }

  std::size_t skipped() const { return skipped_; }

 private:
  Deadline deadline_;
  double limit_ = 0;
  bool expired_ = false;
  std::size_t skipped_ = 0;
};

}  // namespace

std::string violation_type_name(Violation::Type t) {
  switch (t) {
    case Violation::Type::Setup: return "SETUP TIME";
    case Violation::Type::Hold: return "HOLD TIME";
    case Violation::Type::StableWhileHigh: return "STABLE WHILE CLOCK TRUE";
    case Violation::Type::MinPulseHigh: return "MINIMUM HIGH PULSE WIDTH";
    case Violation::Type::MinPulseLow: return "MINIMUM LOW PULSE WIDTH";
    case Violation::Type::Hazard: return "CLOCK HAZARD";
    case Violation::Type::StableAssertionViolated: return "STABLE ASSERTION";
    case Violation::Type::Unconverged: return "EVALUATION NOT CONVERGED";
  }
  return "?";
}

std::vector<SlackEntry> compute_slacks(const Evaluator& ev) {
  std::vector<SlackEntry> out;
  const Netlist& nl = ev.netlist();
  const Time period = ev.options().period;
  for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
    const Primitive& p = nl.prim(pid);
    if (p.kind != PrimKind::SetupHoldChk && p.kind != PrimKind::SetupRiseHoldFallChk) {
      continue;
    }
    Waveform data = ev.prepare(p.inputs[0]).wave.with_skew_incorporated();
    Waveform ck = ev.prepare(p.inputs[1]).wave.with_skew_incorporated();

    SlackEntry e;
    e.checker = pid;
    e.data = p.inputs[0].sig;
    e.setup_slack = period;
    e.hold_slack = period;

    // Set-up margin against every relevant rising edge (uncapped run so
    // positive margins are visible, not clamped at the requirement).
    for (const EdgeWindow& edge : edge_windows(ck, /*rising=*/true)) {
      Time avail = steady_run_until(data, edge.start, period);
      e.setup_slack = std::min(e.setup_slack, avail - p.setup);
      e.has_setup = true;
    }
    // Hold margin: after the rising edge for SETUP HOLD CHK, after the
    // falling edge for the memory-style checker.
    if (p.hold > 0) {
      bool rising_hold = p.kind == PrimKind::SetupHoldChk;
      for (const EdgeWindow& edge : edge_windows(ck, rising_hold)) {
        Time avail = steady_run_from(data, edge.end, period);
        e.hold_slack = std::min(e.hold_slack, avail - p.hold);
        e.has_hold = true;
      }
    }
    if (e.has_setup || e.has_hold) out.push_back(e);
  }
  return out;
}

std::string slack_report(const Netlist& nl, std::vector<SlackEntry> slacks, Time period,
                         std::size_t worst_n) {
  std::sort(slacks.begin(), slacks.end(), [](const SlackEntry& a, const SlackEntry& b) {
    Time wa = std::min(a.has_setup ? a.setup_slack : a.hold_slack,
                       a.has_hold ? a.hold_slack : a.setup_slack);
    Time wb = std::min(b.has_setup ? b.setup_slack : b.hold_slack,
                       b.has_hold ? b.hold_slack : b.setup_slack);
    return wa < wb;
  });

  std::string out = "WORST SLACK REPORT\n";
  char line[256];
  Time min_setup_slack = period;
  bool any_setup = false;
  std::size_t shown = 0;
  for (const SlackEntry& e : slacks) {
    if (e.has_setup) {
      min_setup_slack = std::min(min_setup_slack, e.setup_slack);
      any_setup = true;
    }
    if (shown++ >= worst_n) continue;
    std::snprintf(line, sizeof line, "  %-32s data %-24s setup %8s  hold %8s\n",
                  nl.prim(e.checker).name.c_str(), nl.signal(e.data).base_name.c_str(),
                  e.has_setup ? format_ns(e.setup_slack).c_str() : "-",
                  e.has_hold ? format_ns(e.hold_slack).c_str() : "-");
    out += line;
  }
  if (any_setup) {
    std::snprintf(line, sizeof line,
                  "  cycle time estimate: %s ns period %s by %s ns -> %s ns achievable\n",
                  format_ns(period).c_str(),
                  min_setup_slack >= 0 ? "could shrink" : "must grow",
                  format_ns(min_setup_slack >= 0 ? min_setup_slack : -min_setup_slack).c_str(),
                  format_ns(period - min_setup_slack).c_str());
    out += line;
  }
  return out;
}

std::vector<Violation> run_checks(const EvalView& view,
                                  std::vector<Degradation>* degradations) {
  std::vector<Violation> out;
  const Netlist& nl = view.netlist();
  CheckContext ctx{view, nl, out};
  CheckDeadline deadline(view.options());

  if (!view.converged()) add_unconverged(out);
  for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
    if (deadline.skip()) continue;
    check_prim(ctx, pid);
  }
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    if (deadline.skip()) continue;
    check_stable_assertion(ctx, id);
  }
  deadline.flush(degradations);
  return out;
}

std::vector<Violation> run_checks(const Evaluator& ev,
                                  std::vector<Degradation>* degradations) {
  std::vector<Violation> out = run_checks(
      EvalView(ev.netlist(), ev.options(), ev.converged()), degradations);
  if (!ev.converged()) {
    // The evaluator knows which primitives tripped the oscillation guard;
    // replace the generic "feedback path suspected" with the actual cycles.
    std::vector<std::vector<std::string>> cycles = ev.feedback_cycles();
    if (!cycles.empty() && !out.empty() && out.front().type == Violation::Type::Unconverged) {
      std::vector<Violation> localized;
      localized.reserve(cycles.size());
      for (const auto& cyc : cycles) {
        Violation v;
        v.type = Violation::Type::Unconverged;
        std::string msg = "EVALUATION NOT CONVERGED: unclocked feedback cycle: ";
        for (const std::string& name : cyc) msg += "\"" + name + "\" -> ";
        msg += "\"" + cyc.front() + "\"\n";
        v.message = std::move(msg);
        localized.push_back(std::move(v));
      }
      out.erase(out.begin());
      out.insert(out.begin(), std::make_move_iterator(localized.begin()),
                 std::make_move_iterator(localized.end()));
    }
  }
  return out;
}

std::vector<Violation> run_checks_scoped(const EvalView& view, const Cone& cone,
                                         const std::vector<Violation>& base,
                                         std::vector<Degradation>* degradations) {
  std::vector<Violation> out;
  const Netlist& nl = view.netlist();
  CheckContext ctx{view, nl, out};
  CheckDeadline deadline(view.options());

  if (!view.converged()) add_unconverged(out);

  // Walk in the same order as run_checks, interleaving recomputed checks
  // (inside the cone, where the case may have moved waveforms) with copies
  // of the baseline findings (outside, where every input is bit-identical
  // to the baseline fixpoint). Baseline violations are grouped by origin:
  // the prim-phase ones by reporting primitive, the assertion-phase ones by
  // signal; a stable sort preserves their original relative order.
  std::vector<const Violation*> by_prim, by_signal;
  for (const Violation& v : base) {
    if (v.type == Violation::Type::Unconverged) continue;  // re-derived above
    if (v.type == Violation::Type::StableAssertionViolated) {
      by_signal.push_back(&v);
    } else {
      by_prim.push_back(&v);
    }
  }
  std::stable_sort(by_prim.begin(), by_prim.end(),
                   [](const Violation* a, const Violation* b) { return a->prim < b->prim; });
  std::stable_sort(by_signal.begin(), by_signal.end(), [](const Violation* a,
                                                          const Violation* b) {
    return a->signal < b->signal;
  });

  std::size_t bp = 0;
  for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
    if (cone.contains_prim(pid)) {
      // Once the deadline expires the in-cone re-check is skipped; the
      // baseline findings for this prim are *not* substituted (the case may
      // have moved its inputs), so the skip is surfaced via TV-W204.
      if (!deadline.skip()) check_prim(ctx, pid);
      while (bp < by_prim.size() && by_prim[bp]->prim == pid) ++bp;  // superseded
    } else {
      for (; bp < by_prim.size() && by_prim[bp]->prim == pid; ++bp) out.push_back(*by_prim[bp]);
    }
  }
  std::size_t bs = 0;
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    if (cone.contains_signal(id)) {
      if (!deadline.skip()) check_stable_assertion(ctx, id);
      while (bs < by_signal.size() && by_signal[bs]->signal == id) ++bs;
    } else {
      for (; bs < by_signal.size() && by_signal[bs]->signal == id; ++bs) {
        out.push_back(*by_signal[bs]);
      }
    }
  }
  deadline.flush(degradations);
  return out;
}

std::vector<std::vector<Violation>> run_checks_batch(
    const VerifierOptions& opts, const std::vector<const EvalSnapshot*>& snaps,
    const std::vector<const Cone*>& cones, const std::vector<char>& lane_converged,
    const std::vector<WaveformRef>& base_refs, const std::vector<Violation>& base) {
  const std::size_t L = snaps.size();
  std::vector<std::vector<Violation>> out(L);
  if (L == 0) return out;
  const Netlist& nl = snaps[0]->netlist();

  std::vector<EvalView> views;
  views.reserve(L);
  for (std::size_t l = 0; l < L; ++l) {
    views.emplace_back(*snaps[l], opts, static_cast<bool>(lane_converged[l]));
    if (!lane_converged[l]) add_unconverged(out[l]);
  }

  // The lane-skip test: lane l's cell for `sig` (waveform ref + eval
  // string) still equals the baseline fixpoint. Identity of the string
  // reference short-circuits the common unwritten-slot case.
  auto cell_clean = [&](std::size_t l, SignalId sig) {
    WaveformRef br = sig < base_refs.size() ? base_refs[sig] : kNoWaveform;
    if (snaps[l]->wave_ref(sig) != br) return false;
    const std::string& cur = snaps[l]->eval_str(sig);
    const std::string& bs = nl.signal(sig).eval_str;
    return &cur == &bs || cur == bs;
  };

  // One pass over the block's cone cells: which signals diverged anywhere,
  // and which can carry a directive string in some lane (hazard checks read
  // directives off the *propagated* eval string, so a gate with no static
  // "&" pins can still become check-capable through a diverged input).
  std::vector<char> sig_diverged(nl.num_signals(), 0);
  std::vector<char> sig_str(nl.num_signals(), 0);
  for (SignalId id = 0; id < nl.num_signals(); ++id) {
    if (!nl.signal(id).eval_str.empty()) sig_str[id] = 1;
  }
  for (std::size_t l = 0; l < L; ++l) {
    for (SignalId sig : cones[l]->signals) {
      if (sig_diverged[sig] && sig_str[sig]) continue;
      if (cell_clean(l, sig)) continue;
      sig_diverged[sig] = 1;
      if (!snaps[l]->eval_str(sig).empty()) sig_str[sig] = 1;
    }
  }

  // Baseline findings grouped exactly as run_checks_scoped groups them.
  std::vector<const Violation*> by_prim, by_signal;
  for (const Violation& v : base) {
    if (v.type == Violation::Type::Unconverged) continue;  // re-derived above
    if (v.type == Violation::Type::StableAssertionViolated) {
      by_signal.push_back(&v);
    } else {
      by_prim.push_back(&v);
    }
  }
  std::stable_sort(by_prim.begin(), by_prim.end(),
                   [](const Violation* a, const Violation* b) { return a->prim < b->prim; });
  std::stable_sort(by_signal.begin(), by_signal.end(), [](const Violation* a,
                                                          const Violation* b) {
    return a->signal < b->signal;
  });

  // The primitives that can contribute findings to *some* lane. Everything
  // else yields nothing for every lane -- check_prim on a gate without a
  // directive-carrying input is a no-op -- so the walk visits a small,
  // shared set instead of every primitive once per lane.
  std::vector<PrimId> relevant;
  {
    std::vector<char> mark(nl.num_prims(), 0);
    for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
      const Primitive& p = nl.prim(pid);
      bool capable = prim_is_checker(p.kind);
      for (std::size_t i = 0; !capable && i < p.inputs.size(); ++i) {
        capable = !p.inputs[i].directives.empty() || sig_str[p.inputs[i].sig];
      }
      mark[pid] = static_cast<char>(capable);
    }
    for (const Violation* v : by_prim) {
      if (v->prim != kNoPrim) mark[v->prim] = 1;
    }
    for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
      if (mark[pid]) relevant.push_back(pid);
    }
  }

  std::size_t bp = 0;
  for (PrimId pid : relevant) {
    // Baseline findings for this primitive (ascending walk, so the group
    // starts wherever the cursor stopped).
    while (bp < by_prim.size() && by_prim[bp]->prim < pid) ++bp;
    std::size_t gb = bp, ge = bp;
    while (ge < by_prim.size() && by_prim[ge]->prim == pid) ++ge;
    bp = ge;
    const Primitive& p = nl.prim(pid);
    for (std::size_t l = 0; l < L; ++l) {
      bool recompute = false;
      if (cones[l]->contains_prim(pid)) {
        for (const Pin& pin : p.inputs) {
          if (!cell_clean(l, pin.sig)) {
            recompute = true;
            break;
          }
        }
      }
      if (recompute) {
        CheckContext ctx{views[l], nl, out[l]};
        check_prim(ctx, pid);
      } else {
        // Outside the cone, or inside with every input cell at base: the
        // recheck provably reproduces the baseline findings.
        for (std::size_t g = gb; g < ge; ++g) out[l].push_back(*by_prim[g]);
      }
    }
  }

  // Assertion phase: only signals carrying baseline assertion findings or a
  // checkable assertion that some lane actually moved.
  std::vector<SignalId> relevant_sigs;
  {
    std::vector<char> mark(nl.num_signals(), 0);
    for (SignalId id = 0; id < nl.num_signals(); ++id) {
      const Signal& s = nl.signal(id);
      if (sig_diverged[id] && s.assertion.kind == Assertion::Kind::Stable &&
          s.driver != kNoPrim) {
        mark[id] = 1;
      }
    }
    for (const Violation* v : by_signal) {
      if (v->signal != kNoSignal) mark[v->signal] = 1;
    }
    for (SignalId id = 0; id < nl.num_signals(); ++id) {
      if (mark[id]) relevant_sigs.push_back(id);
    }
  }
  std::size_t bs = 0;
  for (SignalId id : relevant_sigs) {
    while (bs < by_signal.size() && by_signal[bs]->signal < id) ++bs;
    std::size_t gb = bs, ge = bs;
    while (ge < by_signal.size() && by_signal[ge]->signal == id) ++ge;
    bs = ge;
    for (std::size_t l = 0; l < L; ++l) {
      if (cones[l]->contains_signal(id) && !cell_clean(l, id)) {
        CheckContext ctx{views[l], nl, out[l]};
        check_stable_assertion(ctx, id);
      } else {
        for (std::size_t g = gb; g < ge; ++g) out[l].push_back(*by_signal[g]);
      }
    }
  }
  return out;
}

void sort_violations(std::vector<Violation>& violations) {
  std::sort(violations.begin(), violations.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.missed_by, a.signal, a.type, a.prim, a.message) <
           std::tie(b.missed_by, b.signal, b.type, b.prim, b.message);
  });
}

}  // namespace tv
