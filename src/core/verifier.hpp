// Top-level Timing Verifier API (thesis chapter II).
//
// Typical use:
//
//   tv::Netlist nl;
//   ... build the design (directly or via the HDL front end) ...
//   tv::VerifierOptions opts;
//   opts.period = tv::from_ns(50.0);
//   opts.units = tv::ClockUnits::from_ns_per_unit(6.25);
//   tv::Verifier verifier(nl, opts);
//   tv::VerifyResult r = verifier.verify(cases);
//   std::cout << tv::timing_summary(nl);
//   for (const auto& v : r.violations) std::cout << v.message;
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/checker.hpp"
#include "core/evaluator.hpp"

namespace tv {

class ConeIndex;
struct NetlistDelta;
struct ReverifyStats;
struct FixpointState;
namespace diag {
class DiagnosticEngine;
}

struct VerifyResult {
  /// Violations found in the base (first) evaluation.
  std::vector<Violation> violations;
  /// Events processed in the base evaluation (one event = one output value
  /// change; Table 3-1 reports 20 052 for the 6357-chip design).
  std::size_t base_events = 0;
  std::size_t base_evals = 0;
  bool converged = true;
  /// True when any resource guard (segment cap, wall-clock limit, full
  /// waveform table) degraded part of the result to UNKNOWN -- in the base
  /// run or any case. Degraded results are conservative: UNKNOWN can only
  /// add violations, never hide one. JSON export carries this as "partial".
  bool partial = false;
  /// One entry per degradation event (TV-W2xx code + message), base run
  /// first, then cases in input order.
  std::vector<Degradation> degradations;

  struct CaseResult {
    std::string name;
    /// Signals this case disturbs: how many final (waveform, evaluation
    /// string) pairs differ from the baseline fixpoint (sec. 2.7's
    /// incremental footprint). A pure function of the final state, so the
    /// per-case and batch engines report identical counts.
    std::size_t events = 0;
    bool converged = true;   // base convergence AND this case's propagation
    bool degraded = false;   // a resource guard fired inside this case's cone
    /// Violations under this case, sorted by (missed-by, signal, kind) so
    /// the report is byte-stable for every job count.
    std::vector<Violation> violations;
  };
  std::vector<CaseResult> cases;

  /// Undefined signals without assertions (treated always-stable), for the
  /// cross-reference listing of sec. 2.5.
  std::vector<SignalId> cross_reference;

  /// All violations across the base evaluation and every case.
  std::size_t total_violations() const;
};

class Verifier {
 public:
  Verifier(Netlist& nl, VerifierOptions opts) : ev_(nl, opts) {}

  /// Full verification: base evaluation and constraint checks on the shared
  /// netlist, then every case on its own cone-scoped copy-on-write snapshot
  /// of the baseline fixpoint (sec. 2.7). Cases never mutate shared state,
  /// so with options().jobs > 1 they evaluate concurrently; results are
  /// merged in input order and are identical for every job count. The
  /// netlist is left holding the baseline fixpoint.
  VerifyResult verify(const std::vector<CaseSpec>& cases = {});

  /// Incremental re-verification (core/incremental.hpp): applies `delta` to
  /// the netlist, re-runs the event-driven fixpoint only where the edit can
  /// propagate, re-checks only assertions whose support intersects the dirty
  /// set, and splices the result into the previous report. The returned
  /// report is byte-identical to a cold verify() of the edited design
  /// (enforced by tvfuzz --incr-diff); edits the incremental engine cannot
  /// prove safe (dirty cone touching an unclocked feedback loop, degraded or
  /// non-convergent baseline) silently fall back to a cold run. Requires a
  /// prior verify()/reverify() on this Verifier (throws std::logic_error
  /// otherwise); throws std::invalid_argument on an invalid delta, with the
  /// netlist and baseline left untouched. Defined in core/incremental.cpp.
  VerifyResult reverify(const NetlistDelta& delta, ReverifyStats* stats = nullptr);

  /// True after a successful verify()/reverify(): the netlist holds that
  /// run's fixpoint and reverify() can splice against it.
  bool has_baseline() const { return has_baseline_; }
  const std::vector<CaseSpec>& baseline_cases() const { return last_cases_; }
  /// The baseline report reverify() splices against (last verify's result).
  /// Meaningful only when has_baseline().
  const VerifyResult& baseline() const { return last_; }

  /// Serializes the baseline fixpoint into a durable snapshot blob
  /// (core/fixpoint.hpp; `artifact_hash` binds it to a compiled artifact,
  /// 0 for source designs). Throws std::logic_error without a baseline.
  /// Defined in core/fixpoint.cpp.
  std::string snapshot(const std::string& design, std::uint64_t artifact_hash = 0) const;

  /// Rebuilds the baseline from a loaded snapshot without evaluating
  /// anything: binding digests are checked against this verifier's design
  /// and options (TV-E317 on mismatch, reported to `diags`, returns
  /// false with the verifier untouched), every signal's waveform and
  /// evaluation string are written back and re-interned, and the prior
  /// report becomes the splice baseline -- reverify() afterwards behaves
  /// byte-identically to reverify() on the process that wrote the
  /// snapshot, cold-baseline cost never paid. `expected_artifact_hash`
  /// must equal the snapshot's bound artifact hash (0 for source
  /// designs). Defined in core/fixpoint.cpp.
  bool restore(const FixpointState& state, std::uint64_t expected_artifact_hash,
               diag::DiagnosticEngine& diags);

  Evaluator& evaluator() { return ev_; }
  const Evaluator& evaluator() const { return ev_; }

 private:
  VerifyResult verify_impl(const std::vector<CaseSpec>& cases);
  /// The memoized cone index for the current fanout graph, rebuilt when a
  /// structural edit bumped the netlist's structure version.
  const ConeIndex& cone_index();
  /// Per-prim mask: member of a nontrivial SCC of the non-checker fanout
  /// graph (an unclocked feedback loop, where the fixpoint can depend on
  /// evaluation history). Cached per structure version.
  const std::vector<char>& scc_mask();

  Evaluator ev_;
  bool has_baseline_ = false;
  VerifyResult last_;                 // previous report, splice baseline
  std::vector<CaseSpec> last_cases_;  // cases last_ was computed with
  std::shared_ptr<ConeIndex> cone_index_;
  std::vector<char> scc_mask_;
  std::uint64_t scc_version_ = 0;
  bool scc_valid_ = false;
};

// --- report formatting (Figs 3-10 / 3-11) ----------------------------------

/// The timing summary listing: each signal's value changes over the cycle.
std::string timing_summary(const Netlist& nl);
/// The error listing: one formatted block per violation.
std::string violations_report(const std::vector<Violation>& violations);
/// Cross-reference listing of undefined, unasserted signals.
std::string cross_reference_listing(const Netlist& nl, const std::vector<SignalId>& ids);

/// Full where-used cross reference (sec. 3.3.2: the Timing Verifier
/// "generated cross reference listings, which aid the designer in finding
/// where signals are used within the design"): per signal, the defining
/// primitive and every consumer.
std::string where_used_listing(const Netlist& nl);

/// One-line ASCII rendering of a waveform, one character per column:
/// '_' 0, '#' 1, '=' STABLE, 'x' CHANGE, '/' RISE, '\\' FALL, '?' UNKNOWN.
std::string ascii_waveform(const Waveform& w, std::size_t columns = 64);

/// The Fig 3-10 listing with an ASCII waveform strip per signal.
std::string timing_summary_waves(const Netlist& nl, std::size_t columns = 64);

}  // namespace tv
