#include "core/incremental.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/checker.hpp"
#include "core/cone.hpp"
#include "core/snapshot.hpp"
#include "core/verifier.hpp"
#include "util/fault.hpp"

namespace tv {

namespace {

[[noreturn]] void bad(const std::string& msg) {
  throw std::invalid_argument("netlist delta: " + msg);
}

void validate_netlist_edits(const Netlist& nl, const NetlistDelta& delta) {
  for (const NetlistDelta::PrimEdit& e : delta.prims) {
    if (e.prim >= nl.num_prims()) bad("primitive id out of range");
    const Primitive& p = nl.prim(e.prim);
    if (e.kind) {
      if (prim_is_checker(*e.kind) != prim_is_checker(p.kind)) {
        bad("primitive \"" + p.name + "\": a kind change cannot turn a checker into a "
            "functional primitive or back");
      }
      if (p.inputs.size() < prim_min_inputs(*e.kind) ||
          p.inputs.size() > prim_max_inputs(*e.kind)) {
        bad("primitive \"" + p.name + "\": " + std::string(prim_kind_name(*e.kind)) +
            " cannot take " + std::to_string(p.inputs.size()) + " inputs");
      }
    }
    if (e.delay && (e.delay->first < 0 || e.delay->second < e.delay->first)) {
      bad("primitive \"" + p.name + "\": invalid delay range");
    }
    if (e.set_rise_fall && e.clear_rise_fall) {
      bad("primitive \"" + p.name + "\": cannot both set and clear rise/fall delays");
    }
    if (e.set_rise_fall) {
      const RiseFallDelay& rf = e.rise_fall;
      if (rf.rise_min < 0 || rf.rise_max < rf.rise_min || rf.fall_min < 0 ||
          rf.fall_max < rf.fall_min) {
        bad("primitive \"" + p.name + "\": invalid rise/fall delay range");
      }
    }
    if (e.min_pulse && (e.min_pulse->first < 0 || e.min_pulse->second < 0)) {
      bad("primitive \"" + p.name + "\": negative minimum pulse width");
    }
  }
  for (const NetlistDelta::PinEdit& e : delta.pins) {
    if (e.prim >= nl.num_prims()) bad("pin edit: primitive id out of range");
    const Primitive& p = nl.prim(e.prim);
    if (e.input >= p.inputs.size()) {
      bad("primitive \"" + p.name + "\": input index " + std::to_string(e.input) +
          " out of range");
    }
    if (e.sig >= nl.num_signals()) {
      bad("primitive \"" + p.name + "\": pin retarget to unknown signal");
    }
  }
  for (const NetlistDelta::WireEdit& e : delta.wires) {
    if (e.sig >= nl.num_signals()) bad("wire edit: signal id out of range");
    if (e.wire && (e.wire->dmin < 0 || e.wire->dmax < e.wire->dmin)) {
      bad("signal \"" + nl.signal(e.sig).full_name + "\": invalid wire delay range");
    }
  }
  // Assertion edits rename signals; track names released and claimed by
  // earlier edits in this delta so sequential application never collides.
  std::unordered_map<std::string, SignalId> claimed;
  std::unordered_set<std::string> released;
  std::unordered_map<SignalId, std::string> current_name;
  for (const NetlistDelta::AssertionEdit& e : delta.assertions) {
    if (e.sig >= nl.num_signals()) bad("assertion edit: signal id out of range");
    const Signal& s = nl.signal(e.sig);
    // The driver set never changes under a delta (outputs are not editable),
    // so the construction-time driver field stays accurate here even when
    // pin edits have definalized the netlist.
    if (e.assertion.is_clock() && s.driver != kNoPrim) {
      bad("signal \"" + s.full_name + "\" is driven; it cannot carry a clock assertion");
    }
    if (e.full_name.empty()) bad("assertion edit: empty signal name");
    auto cl = claimed.find(e.full_name);
    if (cl != claimed.end()) {
      if (cl->second != e.sig) {
        bad("assertion edit: \"" + e.full_name + "\" already claimed by another edit");
      }
    } else {
      SignalId other = nl.find(e.full_name);
      if (other != kNoSignal && other != e.sig && !released.count(e.full_name)) {
        bad("assertion edit: \"" + e.full_name + "\" already names another signal");
      }
    }
    auto cur = current_name.find(e.sig);
    released.insert(cur != current_name.end() ? cur->second : s.full_name);
    released.erase(e.full_name);
    claimed[e.full_name] = e.sig;
    current_name[e.sig] = e.full_name;
  }
}

std::size_t find_case(const std::vector<CaseSpec>& cases, const std::string& name) {
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (cases[i].name == name) return i;
  }
  return cases.size();
}

/// Applies the case edits to working copies, validating as it goes, and
/// produces both the inverse edits (in application order; the caller
/// reverses them) and the new->prior origin map.
void apply_case_edits(const Netlist& nl, std::vector<CaseSpec>& cases,
                      std::vector<std::ptrdiff_t>& origin, const NetlistDelta& delta,
                      std::vector<NetlistDelta::CaseEdit>& inverse) {
  for (const NetlistDelta::CaseEdit& e : delta.cases) {
    if (e.name.empty()) bad("case edit: empty case name");
    std::size_t idx = find_case(cases, e.name);
    if (!e.spec) {
      if (idx == cases.size()) bad("case edit: no case named \"" + e.name + "\" to remove");
      NetlistDelta::CaseEdit inv;
      inv.name = e.name;
      inv.spec = cases[idx];
      inv.at = idx;
      inverse.push_back(std::move(inv));
      cases.erase(cases.begin() + static_cast<std::ptrdiff_t>(idx));
      origin.erase(origin.begin() + static_cast<std::ptrdiff_t>(idx));
      continue;
    }
    if (e.spec->name != e.name) {
      bad("case edit \"" + e.name + "\": spec carries a different name");
    }
    for (const auto& [sig, val] : e.spec->pins) {
      if (sig >= nl.num_signals()) {
        bad("case \"" + e.name + "\" pins an unknown signal");
      }
      if (val != Value::Zero && val != Value::One) {
        bad("case \"" + e.name + "\": pin values must be 0 or 1");
      }
    }
    if (idx != cases.size()) {
      // In-place replacement keeps the report block order stable.
      NetlistDelta::CaseEdit inv;
      inv.name = e.name;
      inv.spec = cases[idx];
      inverse.push_back(std::move(inv));
      cases[idx] = *e.spec;
      origin[idx] = -1;
      continue;
    }
    std::size_t at = e.at.value_or(cases.size());
    if (at > cases.size()) bad("case edit \"" + e.name + "\": insert position out of range");
    NetlistDelta::CaseEdit inv;
    inv.name = e.name;  // no spec: removal
    inverse.push_back(std::move(inv));
    cases.insert(cases.begin() + static_cast<std::ptrdiff_t>(at), *e.spec);
    origin.insert(origin.begin() + static_cast<std::ptrdiff_t>(at), -1);
  }
}

}  // namespace

AppliedDelta apply_delta(Netlist& nl, std::vector<CaseSpec>& cases,
                         const NetlistDelta& delta) {
  validate_netlist_edits(nl, delta);

  // Case edits run first, on working copies: they are the one edit family
  // whose validity depends on sequential state, so validation and
  // application are one pass. A thrown edit leaves `cases` untouched.
  std::vector<CaseSpec> new_cases = cases;
  AppliedDelta out;
  out.case_origin.resize(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    out.case_origin[i] = static_cast<std::ptrdiff_t>(i);
  }
  std::vector<NetlistDelta::CaseEdit> case_inverse;
  apply_case_edits(nl, new_cases, out.case_origin, delta, case_inverse);

  // Netlist edits are all validated above; from here nothing throws, so the
  // netlist is never left half-edited.
  for (const NetlistDelta::PrimEdit& e : delta.prims) {
    Primitive& p = nl.prim(e.prim);
    NetlistDelta::PrimEdit inv;
    inv.prim = e.prim;
    if (e.kind) {
      inv.kind = p.kind;
      p.kind = *e.kind;
    }
    if (e.delay) {
      inv.delay = {p.dmin, p.dmax};
      p.dmin = e.delay->first;
      p.dmax = e.delay->second;
    }
    if (e.set_rise_fall) {
      if (p.rise_fall) {
        inv.set_rise_fall = true;
        inv.rise_fall = *p.rise_fall;
      } else {
        inv.clear_rise_fall = true;
      }
      p.rise_fall = e.rise_fall;
    } else if (e.clear_rise_fall && p.rise_fall) {
      inv.set_rise_fall = true;
      inv.rise_fall = *p.rise_fall;
      p.rise_fall.reset();
    }
    if (e.setup_hold) {
      inv.setup_hold = {p.setup, p.hold};
      p.setup = e.setup_hold->first;
      p.hold = e.setup_hold->second;
    }
    if (e.min_pulse) {
      inv.min_pulse = {p.min_high, p.min_low};
      p.min_high = e.min_pulse->first;
      p.min_low = e.min_pulse->second;
    }
    out.inverse.prims.push_back(std::move(inv));
  }
  for (const NetlistDelta::PinEdit& e : delta.pins) {
    const Pin& old = nl.prim(e.prim).inputs[e.input];
    NetlistDelta::PinEdit inv{e.prim, e.input, old.sig, old.invert, old.directives};
    nl.retarget_input(e.prim, e.input, e.sig, e.invert, e.directives);
    out.inverse.pins.push_back(std::move(inv));
  }
  for (const NetlistDelta::WireEdit& e : delta.wires) {
    NetlistDelta::WireEdit inv{e.sig, nl.signal(e.sig).wire_delay};
    if (e.wire) {
      nl.set_wire_delay(e.sig, e.wire->dmin, e.wire->dmax);
    } else {
      nl.clear_wire_delay(e.sig);
    }
    out.inverse.wires.push_back(std::move(inv));
  }
  for (const NetlistDelta::AssertionEdit& e : delta.assertions) {
    const Signal& s = nl.signal(e.sig);
    NetlistDelta::AssertionEdit inv{e.sig, s.assertion, s.base_name, s.full_name};
    nl.set_assertion(e.sig, e.assertion, e.base_name, e.full_name);
    out.inverse.assertions.push_back(std::move(inv));
  }

  // Each inverse family undoes its edits newest-first; families themselves
  // touch disjoint state, so field order is fine.
  std::reverse(out.inverse.prims.begin(), out.inverse.prims.end());
  std::reverse(out.inverse.pins.begin(), out.inverse.pins.end());
  std::reverse(out.inverse.wires.begin(), out.inverse.wires.end());
  std::reverse(out.inverse.assertions.begin(), out.inverse.assertions.end());
  std::reverse(case_inverse.begin(), case_inverse.end());
  out.inverse.cases = std::move(case_inverse);

  cases = std::move(new_cases);
  return out;
}

// ---------------------------------------------------------------------------
// JSON delta parsing (the scaldtv --reverify input; docs/incremental.md).
// ---------------------------------------------------------------------------

namespace {

struct JValue {
  enum Type { Null, Bool, Num, Str, Arr, Obj };
  Type type = Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JValue> arr;
  std::vector<std::pair<std::string, JValue>> obj;

  const JValue* get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Minimal recursive-descent JSON reader: objects, arrays, strings with the
/// common escapes, numbers, literals. Deltas are small hand-written or
/// tool-generated files; there is no need for a streaming parser here.
struct JsonReader {
  const char* p;
  const char* end;
  std::string err;

  explicit JsonReader(const std::string& text)
      : p(text.data()), end(text.data() + text.size()) {}

  bool fail(const std::string& msg) {
    if (err.empty()) err = msg;
    return false;
  }
  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  bool parse(JValue& out) {
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case '{': return parse_obj(out);
      case '[': return parse_arr(out);
      case '"': out.type = JValue::Str; return parse_str(out.str);
      case 't':
        if (end - p >= 4 && std::string_view(p, 4) == "true") {
          out.type = JValue::Bool;
          out.b = true;
          p += 4;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (end - p >= 5 && std::string_view(p, 5) == "false") {
          out.type = JValue::Bool;
          out.b = false;
          p += 5;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (end - p >= 4 && std::string_view(p, 4) == "null") {
          out.type = JValue::Null;
          p += 4;
          return true;
        }
        return fail("bad literal");
      default: return parse_num(out);
    }
  }
  bool parse_str(std::string& out) {
    ++p;  // opening quote
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        if (++p >= end) return fail("unterminated escape");
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: return fail("unsupported escape in string");
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }
  bool parse_num(JValue& out) {
    const char* start = p;
    if (p < end && (*p == '-' || *p == '+')) ++p;
    bool any = false;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) || *p == '.' ||
                       *p == 'e' || *p == 'E' || *p == '-' || *p == '+')) {
      ++p;
      any = true;
    }
    if (!any) return fail("expected a value");
    out.type = JValue::Num;
    out.num = std::strtod(std::string(start, p).c_str(), nullptr);
    return true;
  }
  bool parse_arr(JValue& out) {
    out.type = JValue::Arr;
    ++p;  // '['
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      JValue v;
      if (!parse(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }
  bool parse_obj(JValue& out) {
    out.type = JValue::Obj;
    ++p;  // '{'
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      skip_ws();
      if (p >= end || *p != '"') return fail("expected an object key");
      std::string key;
      if (!parse_str(key)) return false;
      skip_ws();
      if (p >= end || *p != ':') return fail("expected ':' after key");
      ++p;
      JValue v;
      if (!parse(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }
};

struct DeltaParser {
  const Netlist& nl;
  std::string err;
  std::unordered_map<std::string, PrimId> prim_by_name;
  std::unordered_set<std::string> ambiguous;

  explicit DeltaParser(const Netlist& netlist) : nl(netlist) {
    for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
      const std::string& name = nl.prim(pid).name;
      if (!prim_by_name.emplace(name, pid).second) ambiguous.insert(name);
    }
  }

  bool fail(const std::string& msg) {
    if (err.empty()) err = msg;
    return false;
  }
  bool prim_id(const JValue& obj, PrimId& out) {
    const JValue* name = obj.get("prim");
    if (!name || name->type != JValue::Str) return fail("edit needs a \"prim\" name");
    if (ambiguous.count(name->str)) {
      return fail("primitive name \"" + name->str + "\" is ambiguous");
    }
    auto it = prim_by_name.find(name->str);
    if (it == prim_by_name.end()) return fail("unknown primitive \"" + name->str + "\"");
    out = it->second;
    return true;
  }
  bool signal_id(const JValue& obj, const char* key, SignalId& out) {
    const JValue* name = obj.get(key);
    if (!name || name->type != JValue::Str) {
      return fail(std::string("edit needs a \"") + key + "\" signal name");
    }
    SignalId id = nl.find(name->str);
    if (id == kNoSignal) return fail("unknown signal \"" + name->str + "\"");
    out = id;
    return true;
  }
  bool time_pair(const JValue& obj, const char* a, const char* b,
                 std::optional<std::pair<Time, Time>>& out) {
    const JValue* va = obj.get(a);
    const JValue* vb = obj.get(b);
    if (!va && !vb) return true;
    if (!va || !vb || va->type != JValue::Num || vb->type != JValue::Num) {
      return fail(std::string("\"") + a + "\" and \"" + b + "\" must be set together");
    }
    out = {from_ns(va->num), from_ns(vb->num)};
    return true;
  }

  bool prim_edit(const JValue& v, NetlistDelta::PrimEdit& e) {
    if (v.type != JValue::Obj) return fail("\"prims\" entries must be objects");
    if (!prim_id(v, e.prim)) return false;
    if (const JValue* kind = v.get("kind")) {
      if (kind->type != JValue::Str) return fail("\"kind\" must be a string");
      bool found = false;
      for (int k = 0; k <= static_cast<int>(PrimKind::MinPulseWidthChk); ++k) {
        if (prim_kind_name(static_cast<PrimKind>(k)) == kind->str) {
          e.kind = static_cast<PrimKind>(k);
          found = true;
          break;
        }
      }
      if (!found) return fail("unknown primitive kind \"" + kind->str + "\"");
    }
    if (!time_pair(v, "dmin", "dmax", e.delay)) return false;
    if (const JValue* rise = v.get("rise_fall")) {
      if (rise->type == JValue::Null) {
        e.clear_rise_fall = true;
      } else if (rise->type == JValue::Arr && rise->arr.size() == 4 &&
                 std::all_of(rise->arr.begin(), rise->arr.end(),
                             [](const JValue& x) { return x.type == JValue::Num; })) {
        e.set_rise_fall = true;
        e.rise_fall = {from_ns(rise->arr[0].num), from_ns(rise->arr[1].num),
                       from_ns(rise->arr[2].num), from_ns(rise->arr[3].num)};
      } else {
        return fail("\"rise_fall\" must be null or [rise_min, rise_max, fall_min, fall_max]");
      }
    }
    if (!time_pair(v, "setup", "hold", e.setup_hold)) return false;
    if (!time_pair(v, "min_high", "min_low", e.min_pulse)) return false;
    return true;
  }
  bool pin_edit(const JValue& v, NetlistDelta::PinEdit& e) {
    if (v.type != JValue::Obj) return fail("\"pins\" entries must be objects");
    if (!prim_id(v, e.prim)) return false;
    const JValue* input = v.get("input");
    if (!input || input->type != JValue::Num) return fail("pin edit needs an \"input\" index");
    e.input = static_cast<std::size_t>(input->num);
    if (!signal_id(v, "signal", e.sig)) return false;
    if (const JValue* inv = v.get("invert")) {
      if (inv->type != JValue::Bool) return fail("\"invert\" must be a boolean");
      e.invert = inv->b;
    }
    if (const JValue* dirs = v.get("directives")) {
      if (dirs->type != JValue::Str) return fail("\"directives\" must be a string");
      e.directives = dirs->str;
    }
    return true;
  }
  bool wire_edit(const JValue& v, NetlistDelta::WireEdit& e) {
    if (v.type != JValue::Obj) return fail("\"wires\" entries must be objects");
    if (!signal_id(v, "signal", e.sig)) return false;
    const JValue* clear = v.get("clear");
    if (clear && clear->type == JValue::Bool && clear->b) return true;  // e.wire stays empty
    std::optional<std::pair<Time, Time>> range;
    if (!time_pair(v, "dmin", "dmax", range)) return false;
    if (!range) return fail("wire edit needs \"dmin\"/\"dmax\" or \"clear\": true");
    e.wire = WireDelay{range->first, range->second};
    return true;
  }
  bool assertion_edit(const JValue& v, NetlistDelta::AssertionEdit& e) {
    if (v.type != JValue::Obj) return fail("\"assertions\" entries must be objects");
    if (!signal_id(v, "signal", e.sig)) return false;
    const JValue* text = v.get("new");
    if (!text || text->type != JValue::Str) {
      return fail("assertion edit needs \"new\": the replacement SCALD signal name");
    }
    try {
      ParsedSignal parsed = parse_signal_name(text->str);
      if (parsed.complemented) return fail("assertion edit name cannot be complemented");
      e.assertion = parsed.assertion;
      e.base_name = parsed.base_name;
      e.full_name = parsed.full_name;
    } catch (const std::invalid_argument& ex) {
      return fail(std::string("assertion edit: ") + ex.what());
    }
    return true;
  }
  bool case_edit(const JValue& v, NetlistDelta::CaseEdit& e) {
    if (v.type != JValue::Obj) return fail("\"cases\" entries must be objects");
    const JValue* name = v.get("name");
    if (!name || name->type != JValue::Str) return fail("case edit needs a \"name\"");
    e.name = name->str;
    const JValue* remove = v.get("remove");
    if (remove && remove->type == JValue::Bool && remove->b) return true;
    const JValue* pins = v.get("pins");
    if (!pins || pins->type != JValue::Arr) {
      return fail("case edit needs \"pins\" (or \"remove\": true)");
    }
    CaseSpec spec;
    spec.name = e.name;
    for (const JValue& pin : pins->arr) {
      if (pin.type != JValue::Arr || pin.arr.size() != 2 ||
          pin.arr[0].type != JValue::Str || pin.arr[1].type != JValue::Num) {
        return fail("case pins must be [\"SIGNAL NAME\", 0-or-1] pairs");
      }
      SignalId sig = nl.find(pin.arr[0].str);
      if (sig == kNoSignal) return fail("case pins unknown signal \"" + pin.arr[0].str + "\"");
      int val = static_cast<int>(pin.arr[1].num);
      if (val != 0 && val != 1) return fail("case pin values must be 0 or 1");
      spec.pins.emplace_back(sig, static_cast<Value>(val));
    }
    e.spec = std::move(spec);
    if (const JValue* at = v.get("at")) {
      if (at->type != JValue::Num || at->num < 0) return fail("\"at\" must be a position");
      e.at = static_cast<std::size_t>(at->num);
    }
    return true;
  }

  template <class Edit, class Fn>
  bool section(const JValue& root, const char* key, std::vector<Edit>& out, Fn&& fn) {
    const JValue* v = root.get(key);
    if (!v) return true;
    if (v->type != JValue::Arr) return fail(std::string("\"") + key + "\" must be an array");
    for (const JValue& entry : v->arr) {
      Edit e;
      if (!(this->*fn)(entry, e)) return false;
      out.push_back(std::move(e));
    }
    return true;
  }
};

}  // namespace

bool parse_delta_json(const std::string& text, const Netlist& nl, NetlistDelta* out,
                      std::string* error) {
  JsonReader reader(text);
  JValue root;
  if (!reader.parse(root)) {
    if (error) *error = "delta JSON: " + reader.err;
    return false;
  }
  reader.skip_ws();
  if (reader.p != reader.end) {
    if (error) *error = "delta JSON: trailing data after the top-level object";
    return false;
  }
  if (root.type != JValue::Obj) {
    if (error) *error = "delta JSON: the top level must be an object";
    return false;
  }
  static const char* kSections[] = {"prims", "pins", "wires", "assertions", "cases"};
  for (const auto& [key, value] : root.obj) {
    bool known = false;
    for (const char* s : kSections) {
      if (key == s) known = true;
    }
    if (!known) {
      if (error) *error = "delta JSON: unknown section \"" + key + "\"";
      return false;
    }
  }
  DeltaParser parser(nl);
  NetlistDelta delta;
  bool ok = parser.section(root, "prims", delta.prims, &DeltaParser::prim_edit) &&
            parser.section(root, "pins", delta.pins, &DeltaParser::pin_edit) &&
            parser.section(root, "wires", delta.wires, &DeltaParser::wire_edit) &&
            parser.section(root, "assertions", delta.assertions,
                           &DeltaParser::assertion_edit) &&
            parser.section(root, "cases", delta.cases, &DeltaParser::case_edit);
  if (!ok) {
    if (error) *error = "delta JSON: " + parser.err;
    return false;
  }
  *out = std::move(delta);
  return true;
}

// ---------------------------------------------------------------------------
// Verifier::reverify
// ---------------------------------------------------------------------------

VerifyResult Verifier::reverify(const NetlistDelta& delta, ReverifyStats* stats) {
  ReverifyStats local;
  ReverifyStats& st = stats ? *stats : local;
  st = ReverifyStats{};
  if (!has_baseline_) {
    throw std::logic_error("reverify: no baseline fixpoint; run verify() first");
  }
  fault::check("incremental.apply");

  if (delta.empty()) {
    // Nothing can change: the cached report is the answer, verbatim.
    st.incremental = true;
    return last_;
  }

  Netlist& nl = ev_.netlist();

  // A pin retarget can change which primitives a case's affected cone even
  // *contains* (the old edge is gone), so a prior case block computed on the
  // old cone may be stale although the new cone is disjoint from every edit.
  // Cone membership only changes when an edited-pin primitive sits in the
  // old cone or the new one; the new side falls out of the check-cone
  // intersection below, the old side must be recorded here, against the
  // still-unedited graph.
  std::vector<char> old_cone_dirty(last_cases_.size(), 0);
  if (delta.structural() && !last_cases_.empty()) {
    const ConeIndex& old_idx = cone_index();
    for (std::size_t i = 0; i < last_cases_.size(); ++i) {
      std::vector<SignalId> pins;
      pins.reserve(last_cases_[i].pins.size());
      for (const auto& [sig, val] : last_cases_[i].pins) pins.push_back(sig);
      std::shared_ptr<const Cone> cc = old_idx.cone_of(std::move(pins));
      for (const NetlistDelta::PinEdit& e : delta.pins) {
        if (e.prim < nl.num_prims() && cc->contains_prim(e.prim)) {
          old_cone_dirty[i] = 1;
          break;
        }
      }
    }
  }

  std::vector<CaseSpec> new_cases = last_cases_;
  // Throws std::invalid_argument with the netlist, case list, and baseline
  // all untouched.
  AppliedDelta applied = apply_delta(nl, new_cases, delta);
  st.inverse = applied.inverse;

  // The netlist is edited now: the cached report no longer describes it, so
  // the baseline is consumed whatever happens next.
  VerifyResult prior = std::move(last_);
  last_ = VerifyResult{};
  last_cases_.clear();
  has_baseline_ = false;

  if (delta.structural()) nl.finalize();  // recompute fanout call lists

  auto fallback = [&](const char* why) {
    st.incremental = false;
    st.fallback_reason = why;
    if (!nl.finalized()) nl.finalize();
    return verify(new_cases);  // records the new baseline itself
  };

  const VerifierOptions& opts = ev_.options();
  if (!prior.converged) return fallback("baseline fixpoint did not converge");
  if (prior.partial) return fallback("baseline is partial (resource-guard degraded)");
  if (opts.time_limit_seconds > 0 || opts.deadline.armed()) {
    // Deadline-degradation points depend on evaluation order, which an
    // incremental run cannot mirror.
    return fallback("wall-clock budget armed");
  }
  if (opts.max_evals_per_prim == 0) return fallback("oscillation guard disabled");

  // Collect the edit's seed pins (signals whose value could move), the
  // primitives to re-evaluate, and the signals whose seed function changed.
  std::vector<SignalId> seeds;
  std::vector<SignalId> reseed;
  std::vector<PrimId> reeval;
  std::vector<PrimId> edited_prims;  // includes checkers (check cone)
  std::vector<SignalId> recheck_signals;
  for (const NetlistDelta::PrimEdit& e : delta.prims) {
    const Primitive& p = nl.prim(e.prim);
    edited_prims.push_back(e.prim);
    if (prim_is_checker(p.kind)) continue;  // parameter edits move no waveform? no:
    // a delay/kind edit changes this primitive's output computation.
    if (p.output != kNoSignal) seeds.push_back(p.output);
    reeval.push_back(e.prim);
  }
  for (const NetlistDelta::PinEdit& e : delta.pins) {
    const Primitive& p = nl.prim(e.prim);
    edited_prims.push_back(e.prim);
    if (prim_is_checker(p.kind)) continue;
    if (p.output != kNoSignal) seeds.push_back(p.output);
    reeval.push_back(e.prim);
  }
  for (const NetlistDelta::WireEdit& e : delta.wires) {
    // The signal's own waveform is unchanged; its consumers see it through a
    // different interconnection delay and must re-evaluate.
    seeds.push_back(e.sig);
    recheck_signals.push_back(e.sig);
    for (PrimId pid : nl.signal(e.sig).fanout) reeval.push_back(pid);
  }
  for (const NetlistDelta::AssertionEdit& e : delta.assertions) {
    seeds.push_back(e.sig);
    recheck_signals.push_back(e.sig);
    reseed.push_back(e.sig);
  }

  fault::check("incremental.cone");

  // The *potential* dirty cone: everything the edit could reach through the
  // (new) fanout graph before event-driven propagation narrows it. This is
  // what the SCC gate must inspect -- the real touched set is only known
  // after propagation, too late to decide soundness.
  std::shared_ptr<const Cone> potential;
  if (!seeds.empty()) {
    potential = cone_index().cone_of(seeds);
    st.dirty_signals = potential->signals;
    st.dirty_prims = potential->prims;
  }
  for (PrimId pid : edited_prims) {
    if (!potential || !potential->contains_prim(pid)) st.dirty_prims.push_back(pid);
  }
  std::sort(st.dirty_prims.begin(), st.dirty_prims.end());
  st.dirty_prims.erase(std::unique(st.dirty_prims.begin(), st.dirty_prims.end()),
                       st.dirty_prims.end());

  if (potential) {
    const std::vector<char>& scc = scc_mask();
    for (PrimId pid : potential->prims) {
      if (scc[pid]) {
        // Inside an unclocked feedback loop the fixpoint may depend on the
        // order values arrived (a combinational latch can hold a transient);
        // re-propagating from final upstream values is not provably
        // equivalent to a cold run there.
        return fallback("dirty cone touches an unclocked feedback loop");
      }
    }
  }

  std::size_t evals_before = ev_.evals_performed();
  st.events = ev_.propagate_incremental(reseed, reeval);
  st.evals = ev_.evals_performed() - evals_before;
  st.touched_signals = ev_.touched_signals().size();
  if (!ev_.converged()) return fallback("incremental propagation did not converge");
  if (ev_.degraded()) return fallback("resource guard fired during incremental propagation");

  VerifyResult r;
  r.converged = true;
  r.partial = false;
  // Cumulative evaluation effort: the baseline's cost plus this delta's.
  // These counters are the one place an incremental report legitimately
  // differs from a cold run -- identity comparisons must exclude them.
  r.base_events = prior.base_events + st.events;
  r.base_evals = prior.base_evals + st.evals;

  // The check cone: signals whose value/eval-string actually changed, plus
  // wire/assertion-edited signals (their checking context changed even when
  // their waveform did not), plus every edited primitive and every consumer
  // of an in-cone signal (their prepared inputs changed).
  std::vector<char> sig_in(nl.num_signals(), 0);
  std::vector<char> prim_in(nl.num_prims(), 0);
  for (SignalId s : ev_.touched_signals()) sig_in[s] = 1;
  for (SignalId s : recheck_signals) sig_in[s] = 1;
  for (PrimId pid : edited_prims) prim_in[pid] = 1;
  for (SignalId s = 0; s < nl.num_signals(); ++s) {
    if (!sig_in[s]) continue;
    for (PrimId pid : nl.signal(s).fanout) prim_in[pid] = 1;
  }
  Cone check_cone;
  check_cone.signal_slot.assign(nl.num_signals(), -1);
  check_cone.prim_slot.assign(nl.num_prims(), -1);
  for (SignalId s = 0; s < nl.num_signals(); ++s) {
    if (sig_in[s]) {
      check_cone.signal_slot[s] = static_cast<std::int32_t>(check_cone.signals.size());
      check_cone.signals.push_back(s);
    }
  }
  for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
    if (prim_in[pid]) {
      check_cone.prim_slot[pid] = static_cast<std::int32_t>(check_cone.prims.size());
      check_cone.prims.push_back(pid);
    }
  }

  // Base findings: recheck inside the cone, splice the prior findings
  // everywhere else (their inputs are bit-identical to the prior fixpoint).
  std::vector<Degradation> check_degs;
  r.violations = run_checks_scoped(EvalView(nl, opts, true), check_cone, prior.violations,
                                  &check_degs);
  if (!check_degs.empty()) return fallback("checker budget degraded");
  r.cross_reference = nl.undefined_unasserted();

  // Case blocks: a case must re-run when it is new/edited, when its prior
  // block was not clean, or when its affected cone intersects the check cone
  // (either a case-cone primitive reads a changed signal, or the base
  // findings its block copied in the check-cone region changed). Disjoint
  // clean cases splice: drop the block's copied check-cone findings, merge
  // in the new ones, re-sort.
  r.cases.resize(new_cases.size());
  std::vector<std::vector<Degradation>> case_degradations(new_cases.size());
  const ConeIndex& cidx = cone_index();
  auto in_check_cone = [&](const Violation& v) {
    if (v.type == Violation::Type::StableAssertionViolated) {
      return v.signal != kNoSignal && sig_in[v.signal] != 0;
    }
    return v.prim != kNoPrim && prim_in[v.prim] != 0;
  };
  for (std::size_t i = 0; i < new_cases.size(); ++i) {
    std::vector<SignalId> pins;
    pins.reserve(new_cases[i].pins.size());
    for (const auto& [sig, val] : new_cases[i].pins) pins.push_back(sig);
    std::shared_ptr<const Cone> ccone = cidx.cone_of(std::move(pins));

    std::ptrdiff_t origin = applied.case_origin[i];
    bool rerun = origin < 0;
    if (!rerun) {
      const VerifyResult::CaseResult& pc = prior.cases[static_cast<std::size_t>(origin)];
      if (!pc.converged || pc.degraded) rerun = true;
      if (old_cone_dirty[static_cast<std::size_t>(origin)]) rerun = true;
    }
    if (!rerun) {
      for (SignalId s : ccone->signals) {
        if (sig_in[s]) {
          rerun = true;
          break;
        }
      }
    }
    if (!rerun) {
      for (PrimId pid : ccone->prims) {
        if (prim_in[pid]) {
          rerun = true;
          break;
        }
      }
    }

    if (rerun) {
      ++st.cases_reevaluated;
      EvalSnapshot snap(nl, ccone, ev_.intern_context().get(), &ev_.wave_refs());
      CaseRunStats cstats = run_case_on_snapshot(snap, new_cases[i], opts);
      VerifyResult::CaseResult cr;
      cr.name = new_cases[i].name;
      cr.events = snap.disturbed_signals();
      cr.converged = r.converged && cstats.converged;
      cr.degraded = cstats.degraded;
      case_degradations[i] = std::move(cstats.degradations);
      EvalView view(snap, opts, cr.converged);
      std::vector<Degradation> cdegs;
      cr.violations = run_checks_scoped(view, *ccone, r.violations, &cdegs);
      for (Degradation& d : cdegs) {
        cr.degraded = true;
        case_degradations[i].push_back(std::move(d));
      }
      sort_violations(cr.violations);
      r.cases[i] = std::move(cr);
    } else {
      ++st.cases_spliced;
      const VerifyResult::CaseResult& pc = prior.cases[static_cast<std::size_t>(origin)];
      VerifyResult::CaseResult cr;
      cr.name = pc.name;
      cr.events = pc.events;  // the case cone's baseline is untouched
      cr.converged = pc.converged;
      cr.degraded = false;
      // The prior block's findings in the check-cone region were copies of
      // the *prior* base findings there; replace them with the new ones.
      for (const Violation& v : pc.violations) {
        if (!in_check_cone(v)) cr.violations.push_back(v);
      }
      for (const Violation& v : r.violations) {
        if (in_check_cone(v) && !(v.type == Violation::Type::StableAssertionViolated
                                      ? ccone->contains_signal(v.signal)
                                      : v.prim != kNoPrim && ccone->contains_prim(v.prim))) {
          cr.violations.push_back(v);
        }
      }
      sort_violations(cr.violations);
      r.cases[i] = std::move(cr);
    }
  }
  for (std::size_t i = 0; i < new_cases.size(); ++i) {
    if (r.cases[i].degraded) r.partial = true;
    for (Degradation& d : case_degradations[i]) {
      r.degradations.push_back(std::move(d));
    }
  }

  st.incremental = true;
  last_ = r;
  last_cases_ = std::move(new_cases);
  has_baseline_ = true;
  return r;
}

}  // namespace tv
