#include "core/netlist.hpp"

#include <stdexcept>

#include "core/scc.hpp"

namespace tv {

std::string_view prim_kind_name(PrimKind k) {
  switch (k) {
    case PrimKind::Buf: return "BUF";
    case PrimKind::Not: return "NOT";
    case PrimKind::Or: return "OR";
    case PrimKind::And: return "AND";
    case PrimKind::Xor: return "XOR";
    case PrimKind::Chg: return "CHG";
    case PrimKind::Mux2: return "2 MUX";
    case PrimKind::Mux4: return "4 MUX";
    case PrimKind::Mux8: return "8 MUX";
    case PrimKind::Reg: return "REG";
    case PrimKind::RegSR: return "REG RS";
    case PrimKind::Latch: return "LATCH";
    case PrimKind::LatchSR: return "LATCH RS";
    case PrimKind::SetupHoldChk: return "SETUP HOLD CHK";
    case PrimKind::SetupRiseHoldFallChk: return "SETUP RISE HOLD FALL CHK";
    case PrimKind::MinPulseWidthChk: return "MIN PULSE WIDTH";
  }
  return "?";
}

bool prim_is_checker(PrimKind k) {
  return k == PrimKind::SetupHoldChk || k == PrimKind::SetupRiseHoldFallChk ||
         k == PrimKind::MinPulseWidthChk;
}

SignalId Netlist::add_signal(const ParsedSignal& parsed, int width) {
  auto it = by_name_.find(parsed.full_name);
  if (it != by_name_.end()) {
    Signal& s = signals_[it->second];
    if (width > s.width) s.width = width;
    return it->second;
  }
  // Sec. 2.5.1: the assertion is *part of the name*, so all references to
  // one signal are consistent by definition -- and the same base name with
  // different assertions denotes different signals (Fig 2-5 uses both
  // "CK .P0-4" and "CK .P2-3 L" as distinct derived clocks).
  SignalId id = static_cast<SignalId>(signals_.size());
  Signal s;
  s.full_name = parsed.full_name;
  s.base_name = parsed.base_name;
  s.assertion = parsed.assertion;
  s.scope = parsed.scope;
  s.width = width;
  signals_.push_back(std::move(s));
  by_name_.emplace(parsed.full_name, id);
  return id;
}

SignalId Netlist::push_signal(Signal s) {
  SignalId id = static_cast<SignalId>(signals_.size());
  s.driver = kNoPrim;
  s.fanout.clear();
  s.wave = Waveform();
  s.eval_str.clear();
  by_name_.emplace(s.full_name, id);  // no-op when the name is already taken
  signals_.push_back(std::move(s));
  finalized_ = false;
  return id;
}

Ref Netlist::ref(std::string_view text, int width) {
  ParsedSignal p = parse_signal_name(text);
  Ref r;
  r.invert = p.complemented;
  r.directives = p.directives;
  r.id = add_signal(p, width);
  return r;
}

SignalId Netlist::find(std::string_view full_name) const {
  auto it = by_name_.find(std::string(full_name));
  return it == by_name_.end() ? kNoSignal : it->second;
}

void Netlist::set_wire_delay(SignalId id, Time dmin, Time dmax) {
  if (dmin < 0 || dmax < dmin) throw std::invalid_argument("invalid wire delay range");
  signals_[id].wire_delay = WireDelay{dmin, dmax};
}

void Netlist::clear_wire_delay(SignalId id) { signals_[id].wire_delay.reset(); }

void Netlist::retarget_input(PrimId pid, std::size_t input, SignalId sig, bool invert,
                             std::string directives) {
  if (pid >= prims_.size() || input >= prims_[pid].inputs.size() || sig >= signals_.size()) {
    throw std::invalid_argument("retarget_input: id out of range");
  }
  Pin& pin = prims_[pid].inputs[input];
  pin.sig = sig;
  pin.invert = invert;
  pin.directives = std::move(directives);
  finalized_ = false;  // fanout call lists are stale now
}

void Netlist::set_assertion(SignalId id, const Assertion& assertion, std::string base_name,
                            std::string full_name) {
  if (id >= signals_.size()) throw std::invalid_argument("set_assertion: id out of range");
  Signal& s = signals_[id];
  auto taken = by_name_.find(full_name);
  if (taken != by_name_.end() && taken->second != id) {
    throw std::invalid_argument("set_assertion: \"" + full_name +
                                "\" already names another signal");
  }
  // Drop the old name only when it still points at this signal (a synonym
  // merge may have redirected it to the surviving entry).
  auto old_it = by_name_.find(s.full_name);
  if (old_it != by_name_.end() && old_it->second == id) by_name_.erase(old_it);
  s.assertion = assertion;
  s.base_name = std::move(base_name);
  s.full_name = std::move(full_name);
  by_name_.emplace(s.full_name, id);
}

void Netlist::set_rise_fall(PrimId id, RiseFallDelay rf) {
  if (rf.rise_min < 0 || rf.rise_max < rf.rise_min || rf.fall_min < 0 ||
      rf.fall_max < rf.fall_min) {
    throw std::invalid_argument("invalid rise/fall delay range");
  }
  prims_[id].rise_fall = rf;
}

void Netlist::merge_signals(SignalId keep, SignalId drop) {
  if (keep == drop) return;
  Signal& k = signals_[keep];
  Signal& d = signals_[drop];
  if (k.assertion.kind != Assertion::Kind::None && d.assertion.kind != Assertion::Kind::None &&
      !(k.assertion == d.assertion)) {
    throw std::invalid_argument("synonym \"" + k.full_name + "\" = \"" + d.full_name +
                                "\": conflicting assertions");
  }
  if (k.assertion.kind == Assertion::Kind::None) k.assertion = d.assertion;
  k.width = std::max(k.width, d.width);
  if (!k.wire_delay) k.wire_delay = d.wire_delay;
  for (Primitive& p : prims_) {
    for (Pin& pin : p.inputs) {
      if (pin.sig == drop) pin.sig = keep;
    }
    if (p.output == drop) p.output = keep;
  }
  by_name_[d.full_name] = keep;
  d.fanout.clear();
  d.driver = kNoPrim;
  finalized_ = false;
}

PrimId Netlist::add_prim(Primitive p) {
  if (p.dmin < 0 || p.dmax < p.dmin) {
    throw std::invalid_argument("primitive \"" + p.name + "\": invalid delay range");
  }
  PrimId id = static_cast<PrimId>(prims_.size());
  prims_.push_back(std::move(p));
  finalized_ = false;
  return id;
}

namespace {
Pin to_pin(const Ref& r) { return Pin{r.id, r.invert, r.directives}; }
}  // namespace

PrimId Netlist::gate(PrimKind kind, std::string name, Time dmin, Time dmax,
                     std::vector<Ref> ins, Ref out, int width) {
  Primitive p;
  p.kind = kind;
  p.name = std::move(name);
  p.dmin = dmin;
  p.dmax = dmax;
  p.width = width;
  for (const Ref& r : ins) p.inputs.push_back(to_pin(r));
  p.output = out.id;
  if (out.invert) {
    throw std::invalid_argument("primitive \"" + p.name + "\": output connection cannot be complemented");
  }
  return add_prim(std::move(p));
}

PrimId Netlist::buf(std::string name, Time dmin, Time dmax, Ref in, Ref out, int width) {
  return gate(PrimKind::Buf, std::move(name), dmin, dmax, {in}, out, width);
}
PrimId Netlist::not_gate(std::string name, Time dmin, Time dmax, Ref in, Ref out, int width) {
  return gate(PrimKind::Not, std::move(name), dmin, dmax, {in}, out, width);
}
PrimId Netlist::or_gate(std::string name, Time dmin, Time dmax, std::vector<Ref> ins, Ref out,
                        int width) {
  return gate(PrimKind::Or, std::move(name), dmin, dmax, std::move(ins), out, width);
}
PrimId Netlist::and_gate(std::string name, Time dmin, Time dmax, std::vector<Ref> ins, Ref out,
                         int width) {
  return gate(PrimKind::And, std::move(name), dmin, dmax, std::move(ins), out, width);
}
PrimId Netlist::xor_gate(std::string name, Time dmin, Time dmax, std::vector<Ref> ins, Ref out,
                         int width) {
  return gate(PrimKind::Xor, std::move(name), dmin, dmax, std::move(ins), out, width);
}
PrimId Netlist::chg(std::string name, Time dmin, Time dmax, std::vector<Ref> ins, Ref out,
                    int width) {
  return gate(PrimKind::Chg, std::move(name), dmin, dmax, std::move(ins), out, width);
}
PrimId Netlist::mux2(std::string name, Time dmin, Time dmax, Ref sel, Ref d0, Ref d1, Ref out,
                     int width) {
  return gate(PrimKind::Mux2, std::move(name), dmin, dmax, {sel, d0, d1}, out, width);
}
PrimId Netlist::mux4(std::string name, Time dmin, Time dmax, Ref s0, Ref s1,
                     std::vector<Ref> data, Ref out, int width) {
  std::vector<Ref> ins = {s0, s1};
  ins.insert(ins.end(), data.begin(), data.end());
  return gate(PrimKind::Mux4, std::move(name), dmin, dmax, std::move(ins), out, width);
}
PrimId Netlist::mux8(std::string name, Time dmin, Time dmax, Ref s0, Ref s1, Ref s2,
                     std::vector<Ref> data, Ref out, int width) {
  std::vector<Ref> ins = {s0, s1, s2};
  ins.insert(ins.end(), data.begin(), data.end());
  return gate(PrimKind::Mux8, std::move(name), dmin, dmax, std::move(ins), out, width);
}
PrimId Netlist::reg(std::string name, Time dmin, Time dmax, Ref data, Ref clock, Ref out,
                    int width) {
  return gate(PrimKind::Reg, std::move(name), dmin, dmax, {data, clock}, out, width);
}
PrimId Netlist::reg_sr(std::string name, Time dmin, Time dmax, Ref data, Ref clock, Ref set,
                       Ref reset, Ref out, int width) {
  return gate(PrimKind::RegSR, std::move(name), dmin, dmax, {data, clock, set, reset}, out,
              width);
}
PrimId Netlist::latch(std::string name, Time dmin, Time dmax, Ref data, Ref enable, Ref out,
                      int width) {
  return gate(PrimKind::Latch, std::move(name), dmin, dmax, {data, enable}, out, width);
}
PrimId Netlist::latch_sr(std::string name, Time dmin, Time dmax, Ref data, Ref enable, Ref set,
                         Ref reset, Ref out, int width) {
  return gate(PrimKind::LatchSR, std::move(name), dmin, dmax, {data, enable, set, reset}, out,
              width);
}

PrimId Netlist::setup_hold_chk(std::string name, Time setup, Time hold, Ref i, Ref ck,
                               int width) {
  Primitive p;
  p.kind = PrimKind::SetupHoldChk;
  p.name = std::move(name);
  p.setup = setup;
  p.hold = hold;
  p.width = width;
  p.inputs = {to_pin(i), to_pin(ck)};
  return add_prim(std::move(p));
}

PrimId Netlist::setup_rise_hold_fall_chk(std::string name, Time setup, Time hold, Ref i, Ref ck,
                                         int width) {
  Primitive p;
  p.kind = PrimKind::SetupRiseHoldFallChk;
  p.name = std::move(name);
  p.setup = setup;
  p.hold = hold;
  p.width = width;
  p.inputs = {to_pin(i), to_pin(ck)};
  return add_prim(std::move(p));
}

PrimId Netlist::min_pulse_width_chk(std::string name, Time min_high, Time min_low, Ref i) {
  Primitive p;
  p.kind = PrimKind::MinPulseWidthChk;
  p.name = std::move(name);
  p.min_high = min_high;
  p.min_low = min_low;
  p.inputs = {to_pin(i)};
  return add_prim(std::move(p));
}

std::size_t prim_min_inputs(PrimKind k) {
  switch (k) {
    case PrimKind::Buf:
    case PrimKind::Not:
    case PrimKind::MinPulseWidthChk: return 1;
    case PrimKind::Or:
    case PrimKind::And:
    case PrimKind::Xor:
    case PrimKind::Chg: return 1;
    case PrimKind::Mux2: return 3;
    case PrimKind::Mux4: return 6;
    case PrimKind::Mux8: return 11;
    case PrimKind::Reg:
    case PrimKind::Latch:
    case PrimKind::SetupHoldChk:
    case PrimKind::SetupRiseHoldFallChk: return 2;
    case PrimKind::RegSR:
    case PrimKind::LatchSR: return 4;
  }
  return 1;
}

std::size_t prim_max_inputs(PrimKind k) {
  switch (k) {
    case PrimKind::Or:
    case PrimKind::And:
    case PrimKind::Xor:
    case PrimKind::Chg: return static_cast<std::size_t>(-1);
    default: return prim_min_inputs(k);
  }
}

void Netlist::finalize() {
  for (Signal& s : signals_) {
    s.fanout.clear();
    s.driver = kNoPrim;
  }
  for (PrimId pid = 0; pid < prims_.size(); ++pid) {
    Primitive& p = prims_[pid];
    if (p.inputs.size() < prim_min_inputs(p.kind) || p.inputs.size() > prim_max_inputs(p.kind)) {
      throw std::logic_error("primitive \"" + p.name + "\" (" +
                             std::string(prim_kind_name(p.kind)) + "): wrong input count " +
                             std::to_string(p.inputs.size()));
    }
    bool needs_output = !prim_is_checker(p.kind);
    if (needs_output && p.output == kNoSignal) {
      throw std::logic_error("primitive \"" + p.name + "\" has no output");
    }
    if (!needs_output && p.output != kNoSignal) {
      throw std::logic_error("checker \"" + p.name + "\" must not drive a signal");
    }
    for (const Pin& pin : p.inputs) {
      if (pin.sig == kNoSignal || pin.sig >= signals_.size()) {
        throw std::logic_error("primitive \"" + p.name + "\" has an unconnected input");
      }
      std::vector<PrimId>& fo = signals_[pin.sig].fanout;
      if (fo.empty() || fo.back() != pid) fo.push_back(pid);
    }
    if (p.output != kNoSignal) {
      Signal& out = signals_[p.output];
      if (out.driver != kNoPrim) {
        throw std::logic_error("signal \"" + out.full_name + "\" has multiple drivers");
      }
      if (out.assertion.is_clock()) {
        // A clock assertion defines the waveform; driving it as well would
        // make the check circular. Stable assertions on driven signals are
        // fine: they are *checked* against the computed waveform (sec 2.5.2).
        throw std::logic_error("signal \"" + out.full_name +
                               "\" carries a clock assertion but is driven by \"" + p.name +
                               "\"");
      }
      out.driver = pid;
    }
  }
  finalized_ = true;
  ++structure_version_;
}

bool Netlist::finalize(diag::DiagnosticEngine& diags,
                       const std::vector<diag::SourceLoc>* prim_locs) {
  auto loc_of = [&](PrimId pid) -> diag::SourceLoc {
    if (prim_locs && pid < prim_locs->size()) return (*prim_locs)[pid];
    return diag::SourceLoc{};
  };
  bool ok = true;
  auto error = [&](PrimId pid, const char* code, const std::string& msg) {
    diags.report(diag::Severity::Error, code, loc_of(pid), msg);
    ok = false;
  };

  for (Signal& s : signals_) {
    s.fanout.clear();
    s.driver = kNoPrim;
  }
  for (PrimId pid = 0; pid < prims_.size(); ++pid) {
    Primitive& p = prims_[pid];
    if (p.inputs.size() < prim_min_inputs(p.kind) || p.inputs.size() > prim_max_inputs(p.kind)) {
      error(pid, diag::kErrPinCountFinal,
            "primitive \"" + p.name + "\" (" + std::string(prim_kind_name(p.kind)) +
                "): wrong input count " + std::to_string(p.inputs.size()));
    }
    bool needs_output = !prim_is_checker(p.kind);
    if (needs_output && p.output == kNoSignal) {
      error(pid, diag::kErrNoOutput, "primitive \"" + p.name + "\" has no output");
    }
    if (!needs_output && p.output != kNoSignal) {
      error(pid, diag::kErrCheckerDrives, "checker \"" + p.name + "\" must not drive a signal");
    }
    for (const Pin& pin : p.inputs) {
      if (pin.sig == kNoSignal || pin.sig >= signals_.size()) {
        error(pid, diag::kErrUnconnectedInput,
              "primitive \"" + p.name + "\" has an unconnected input");
        continue;
      }
      std::vector<PrimId>& fo = signals_[pin.sig].fanout;
      if (fo.empty() || fo.back() != pid) fo.push_back(pid);
    }
    if (p.output != kNoSignal && p.output < signals_.size()) {
      Signal& out = signals_[p.output];
      if (out.driver != kNoPrim) {
        error(pid, diag::kErrMultipleDrivers,
              "signal \"" + out.full_name + "\" has multiple drivers");
      } else {
        if (out.assertion.is_clock()) {
          error(pid, diag::kErrClockDriven,
                "signal \"" + out.full_name + "\" carries a clock assertion but is driven by \"" +
                    p.name + "\"");
        }
        out.driver = pid;
      }
    }
  }
  if (!ok) return false;

  // Static loop check: a cycle of zero-delay combinational primitives (no
  // clocked element, no checker, no nonzero propagation or wire delay on the
  // way around) can never settle -- the evaluator's oscillation guard would
  // trip at run time. Warn now, naming the signal cycle.
  auto zero_delay_comb = [&](const Primitive& p) {
    if (prim_is_checker(p.kind)) return false;
    switch (p.kind) {
      case PrimKind::Reg:
      case PrimKind::RegSR:
      case PrimKind::Latch:
      case PrimKind::LatchSR: return false;
      default: break;
    }
    Time dmax = p.dmax;
    if (p.rise_fall) dmax = std::max(p.rise_fall->rise_max, p.rise_fall->fall_max);
    return dmax == 0;
  };
  std::vector<std::vector<std::uint32_t>> adj(prims_.size());
  for (PrimId pid = 0; pid < prims_.size(); ++pid) {
    const Primitive& p = prims_[pid];
    if (!zero_delay_comb(p) || p.output == kNoSignal) continue;
    const Signal& out = signals_[p.output];
    if (out.wire_delay && out.wire_delay->dmax > 0) continue;
    for (PrimId consumer : out.fanout) {
      if (zero_delay_comb(prims_[consumer])) adj[pid].push_back(consumer);
    }
  }
  for (const auto& comp : strongly_connected_components(adj)) {
    std::vector<std::uint32_t> cycle = cycle_through_component(adj, comp);
    if (cycle.empty()) continue;
    std::string msg = "zero-delay combinational loop: ";
    for (std::uint32_t pid : cycle) {
      msg += "\"" + signals_[prims_[pid].output].full_name + "\" -> ";
    }
    msg += "\"" + signals_[prims_[cycle[0]].output].full_name + "\"";
    diags.report(diag::Severity::Warning, diag::kWarnZeroDelayLoop, loc_of(cycle[0]), msg);
  }

  finalized_ = true;
  ++structure_version_;
  return true;
}

std::vector<SignalId> Netlist::undefined_unasserted() const {
  std::vector<SignalId> out;
  for (SignalId id = 0; id < signals_.size(); ++id) {
    const Signal& s = signals_[id];
    if (s.driver == kNoPrim && s.assertion.kind == Assertion::Kind::None && !s.fanout.empty()) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace tv
