// Structure-of-arrays evaluation arena for batch case analysis.
//
// The batch engine (core/batch_eval.hpp) evaluates many case instances --
// "lanes" -- in lockstep over one topological sweep of the design. Its
// working state is deliberately *structure-of-arrays*: for every signal row
// the per-lane interned waveform refs (wave_table.hpp's 32-bit handles) are
// laid out contiguously, `[signal][lane]`, so the hot inner loops -- "which
// lanes differ from the base fixpoint at this input?" and "did this lane's
// output change?" -- are branch-minimal passes over adjacent u32 cells that
// the compiler can vectorize. The same layout is what a future SIMD or GPU
// corner sweep (ROADMAP items 3-4) consumes unchanged: one row is one
// coalesced load.
//
// Evaluation strings ride along in a parallel `[signal][lane]` array of
// small integer ids backed by a run-local EvalStrPool, so the "lane equals
// base" test stays a pair of integer compares even for signals carrying
// hazard directives.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/wave_table.hpp"

namespace tv {

/// Run-local intern pool for evaluation strings. Dense u32 ids make string
/// equality an integer compare inside the lane loops; id 0 is always the
/// empty string (the overwhelmingly common case -- only hazard-directive
/// propagation produces non-empty strings). Not thread-safe: each case
/// block owns one pool.
class EvalStrPool {
 public:
  EvalStrPool() {
    strs_.emplace_back();  // id 0 = ""
    ids_.emplace(std::string(), 0);
  }

  std::uint32_t intern(const std::string& s) {
    if (s.empty()) return 0;
    auto [it, inserted] = ids_.emplace(s, static_cast<std::uint32_t>(strs_.size()));
    if (inserted) strs_.push_back(s);
    return it->second;
  }

  const std::string& str(std::uint32_t id) const { return strs_[id]; }
  std::size_t size() const { return strs_.size(); }

 private:
  std::vector<std::string> strs_;
  std::unordered_map<std::string, std::uint32_t> ids_;
};

/// The SoA lane state of one case block: `rows` signal rows (the union of
/// the block's affected cones, densely renumbered) by `lanes` case
/// instances. refs(row)[lane] is the lane's current interned waveform for
/// that signal; strs(row)[lane] its evaluation-string id. Rows start filled
/// with the baseline fixpoint, so "lane is at base" is the natural initial
/// state and dirtiness is always an explicit divergence.
class BatchArena {
 public:
  BatchArena(std::size_t rows, std::size_t lanes)
      : rows_(rows),
        lanes_(lanes),
        refs_(rows * lanes, kNoWaveform),
        strs_(rows * lanes, 0) {}

  std::size_t rows() const { return rows_; }
  std::size_t lanes() const { return lanes_; }

  WaveformRef* refs(std::size_t row) { return refs_.data() + row * lanes_; }
  const WaveformRef* refs(std::size_t row) const { return refs_.data() + row * lanes_; }
  std::uint32_t* strs(std::size_t row) { return strs_.data() + row * lanes_; }
  const std::uint32_t* strs(std::size_t row) const { return strs_.data() + row * lanes_; }

  /// Seeds every lane of one row with the baseline (ref, string-id) pair.
  void fill_row(std::size_t row, WaveformRef ref, std::uint32_t str_id) {
    WaveformRef* r = refs(row);
    std::uint32_t* s = strs(row);
    for (std::size_t l = 0; l < lanes_; ++l) {
      r[l] = ref;
      s[l] = str_id;
    }
  }

 private:
  std::size_t rows_;
  std::size_t lanes_;
  std::vector<WaveformRef> refs_;   // [row][lane], contiguous per row
  std::vector<std::uint32_t> strs_;  // parallel eval-string ids
};

}  // namespace tv
