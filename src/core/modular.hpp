// Modular, section-by-section verification (thesis secs. 1.1, 2.5.2).
//
// "Putting these 'stable' assertions on interface signals is the key to the
// ability to verify a design in sections. After each section is verified,
// SCALD checks to see that all interface signals have the same timing
// assertions on them. If no section of a design being verified has a timing
// error and if all of the interface signals of all such sections have
// consistent assertions on them, then the entire design must be free of
// timing errors."
//
// A section is an independent Netlist. An *interface signal* is one that is
// driven in one section and consumed (undriven) in another; in the consumer
// it must carry an assertion describing its timing, and that assertion --
// being part of the signal name -- must be textually identical everywhere
// the signal appears. Inside the producing section a stable assertion on a
// driven signal is checked against the computed waveform by run_checks().
#pragma once

#include <string>
#include <vector>

#include "core/verifier.hpp"

namespace tv {

struct Section {
  std::string name;
  Netlist* netlist = nullptr;
  std::vector<CaseSpec> cases;
};

struct InterfaceIssue {
  enum class Kind {
    AssertionMismatch,   // same base name, different assertions across sections
    MissingAssertion,    // consumed across a section boundary with no assertion
    MultipleDrivers      // driven in more than one section
  };
  Kind kind = Kind::AssertionMismatch;
  std::string base_name;
  std::string detail;
};

/// Cross-section interface consistency check. Signals local to one section
/// are ignored; a signal is an interface signal when its base name appears
/// in two or more sections or when it is undriven-but-asserted anywhere.
std::vector<InterfaceIssue> check_interfaces(const std::vector<Section>& sections);

struct ModularResult {
  struct PerSection {
    std::string name;
    VerifyResult result;
  };
  std::vector<PerSection> sections;
  std::vector<InterfaceIssue> interface_issues;

  /// The sec. 2.5.2 theorem's premise: every section clean and every
  /// interface consistent.
  bool design_free_of_timing_errors() const;
};

/// Verifies each section independently with its own options, then checks
/// interface consistency.
ModularResult verify_modular(std::vector<Section>& sections, const VerifierOptions& opts);

}  // namespace tv
