// Structured diagnostics for the Timing Verifier front-end and engine.
//
// The thesis stresses that the verifier's value is its *report* (secs. 2.4,
// 3.5): it must pinpoint where a constraint fails, not merely detect it.
// This subsystem is the reporting substrate: every front-end and engine
// condition becomes a Diagnostic record -- severity, stable error code
// (SHDL-E012 style), source span, message, attached notes (e.g. the macro
// expansion backtrace) -- collected by a DiagnosticEngine instead of being
// thrown as a bare exception that kills the run at the first problem.
//
// Error-code families (catalog in docs/diagnostics.md):
//   SHDL-E00x  lexical errors
//   SHDL-E01x  syntax errors (parser)
//   SHDL-E02x  elaboration errors (macro expansion, signals, primitives)
//   SHDL-E03x  design-level semantic errors (no design block, bad period)
//   SHDL-E04x  netlist structural errors (finalize)
//   SHDL-W05x  front-end warnings (static zero-delay loop, ...)
//   TV-E1xx    engine errors (unconverged evaluation)
//   TV-W2xx    engine resource-degradation warnings
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tv::diag {

enum class Severity { Note, Warning, Error, Fatal };

std::string_view severity_name(Severity s);

/// A point in an SHDL source. Lines and columns are 1-based; 0 means
/// "unknown" and renderers omit the component.
struct SourceLoc {
  std::string file;
  int line = 0;
  int column = 0;
};

/// An attached note: secondary location + explanation (macro expansion
/// backtraces, "previous definition here", ...).
struct Note {
  SourceLoc loc;
  std::string message;
};

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string code;     // stable machine-readable code, e.g. "SHDL-E012"
  SourceLoc loc;
  std::string message;
  std::vector<Note> notes;
};

/// Collects diagnostics for one front-end / verification run.
///
/// Severity policy: `werror` promotes warnings to errors as they are
/// reported; `max_errors` caps the number of *errors* collected -- when the
/// cap is hit a final SHDL-E009 note-of-abandonment is appended and
/// error_limit_reached() turns true so recovering parsers stop early.
class DiagnosticEngine {
 public:
  struct Options {
    std::size_t max_errors = 20;  // 0 = unlimited
    bool werror = false;
  };

  DiagnosticEngine() = default;
  explicit DiagnosticEngine(Options opts) : opts_(opts) {}

  /// Default file stamped onto reported locations whose `file` is empty.
  void set_current_file(std::string file) { current_file_ = std::move(file); }
  const std::string& current_file() const { return current_file_; }

  /// Reports one diagnostic; returns a reference to the stored record so
  /// callers may attach notes. After the error cap is hit, further errors
  /// are swallowed (the returned reference points at a scratch record).
  Diagnostic& report(Severity sev, std::string code, SourceLoc loc, std::string message);
  /// Convenience: location in the current file.
  Diagnostic& report(Severity sev, std::string code, int line, int column,
                     std::string message);

  bool has_errors() const { return error_count_ > 0; }
  std::size_t error_count() const { return error_count_; }
  std::size_t warning_count() const { return warning_count_; }
  /// True once max_errors has been reached; recovering parsers abandon the
  /// run at this point.
  bool error_limit_reached() const { return limit_reached_; }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  std::string current_file_;
  std::vector<Diagnostic> diags_;
  Diagnostic scratch_;  // sink for reports past the error cap
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
  bool limit_reached_ = false;
};

// --- error-code constants ---------------------------------------------------
// Lexical
inline constexpr const char* kErrUnterminatedString = "SHDL-E001";
inline constexpr const char* kErrUnexpectedChar = "SHDL-E002";
inline constexpr const char* kErrMalformedNumber = "SHDL-E003";
inline constexpr const char* kErrTooManyErrors = "SHDL-E009";
// Syntax
inline constexpr const char* kErrExpectedToken = "SHDL-E010";
inline constexpr const char* kErrDuplicateMacro = "SHDL-E011";
inline constexpr const char* kErrMultipleDesigns = "SHDL-E012";
inline constexpr const char* kErrBadCaseValue = "SHDL-E013";
inline constexpr const char* kErrBadStatement = "SHDL-E014";
// Elaboration
inline constexpr const char* kErrElab = "SHDL-E020";
inline constexpr const char* kErrUnknownParam = "SHDL-E021";
inline constexpr const char* kErrBadRange = "SHDL-E022";
inline constexpr const char* kErrNotAParameter = "SHDL-E023";
inline constexpr const char* kErrUnknownMacro = "SHDL-E024";
inline constexpr const char* kErrMacroParams = "SHDL-E025";
inline constexpr const char* kErrMacroRecursion = "SHDL-E026";
inline constexpr const char* kErrPinCount = "SHDL-E027";
inline constexpr const char* kErrUnknownPrimitive = "SHDL-E028";
inline constexpr const char* kErrRiseFallPair = "SHDL-E029";
// Design-level
inline constexpr const char* kErrNoDesign = "SHDL-E030";
inline constexpr const char* kErrBadPeriod = "SHDL-E031";
inline constexpr const char* kErrBadDelay = "SHDL-E032";
inline constexpr const char* kErrInternal = "SHDL-E099";
// Netlist structure (finalize)
inline constexpr const char* kErrPinCountFinal = "SHDL-E040";
inline constexpr const char* kErrNoOutput = "SHDL-E041";
inline constexpr const char* kErrCheckerDrives = "SHDL-E042";
inline constexpr const char* kErrUnconnectedInput = "SHDL-E043";
inline constexpr const char* kErrMultipleDrivers = "SHDL-E044";
inline constexpr const char* kErrClockDriven = "SHDL-E045";
// Front-end warnings
inline constexpr const char* kWarnZeroDelayLoop = "SHDL-W050";
// Engine
inline constexpr const char* kErrUnconverged = "TV-E101";
inline constexpr const char* kWarnSegmentCap = "TV-W201";
inline constexpr const char* kWarnTimeLimit = "TV-W202";
inline constexpr const char* kWarnTableFull = "TV-W203";
inline constexpr const char* kWarnCheckDeadline = "TV-W204";
// Compiled-design artifacts (core/compiled.hpp). All are input errors: a
// rejected artifact exits with status 2, never 5 -- a bad file will not get
// better on retry.
inline constexpr const char* kErrArtifactIo = "TV-E300";         // cannot open/read
inline constexpr const char* kErrArtifactMagic = "TV-E301";      // not a compiled design
inline constexpr const char* kErrArtifactVersion = "TV-E302";    // format-version skew
inline constexpr const char* kErrArtifactTruncated = "TV-E303";  // short read / bad section size
inline constexpr const char* kErrArtifactHash = "TV-E304";       // content-hash mismatch
inline constexpr const char* kErrArtifactMalformed = "TV-E305";  // bad record / ref out of range
inline constexpr const char* kErrArtifactEndian = "TV-E306";     // byte-order mismatch
// Fixpoint snapshots (core/fixpoint.hpp), the TV-E30x codes' sidecar
// mirror. All are input errors (exit 2): a rejected snapshot means "run
// the cold baseline", never a crash or a retry.
inline constexpr const char* kErrSnapshotIo = "TV-E310";         // cannot open/read
inline constexpr const char* kErrSnapshotMagic = "TV-E311";      // not a fixpoint snapshot
inline constexpr const char* kErrSnapshotVersion = "TV-E312";    // format-version skew
inline constexpr const char* kErrSnapshotTruncated = "TV-E313";  // short read / bad section size
inline constexpr const char* kErrSnapshotHash = "TV-E314";       // content-hash mismatch
inline constexpr const char* kErrSnapshotMalformed = "TV-E315";  // bad record / ref out of range
inline constexpr const char* kErrSnapshotEndian = "TV-E316";     // byte-order mismatch
inline constexpr const char* kErrSnapshotBinding = "TV-E317";    // snapshot of a different design/options

}  // namespace tv::diag
