#include "diag/render.hpp"

namespace tv::diag {

namespace {

void loc_into(std::string& out, const SourceLoc& loc) {
  if (!loc.file.empty()) {
    out += loc.file;
    out += ':';
  }
  if (loc.line > 0) {
    out += std::to_string(loc.line);
    out += ':';
    if (loc.column > 0) {
      out += std::to_string(loc.column);
      out += ':';
    }
  }
  if (!out.empty() && out.back() == ':') out += ' ';
}

void json_escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void loc_json_into(std::string& out, const SourceLoc& loc) {
  out += "{\"file\": \"";
  json_escape_into(out, loc.file);
  out += "\", \"line\": " + std::to_string(loc.line) +
         ", \"column\": " + std::to_string(loc.column) + "}";
}

}  // namespace

std::string render_text(const Diagnostic& d) {
  std::string out;
  loc_into(out, d.loc);
  out += severity_name(d.severity);
  out += ": ";
  out += d.message;
  if (!d.code.empty()) {
    out += " [";
    out += d.code;
    out += ']';
  }
  out += '\n';
  for (const Note& n : d.notes) {
    out += "  ";
    loc_into(out, n.loc);
    out += "note: ";
    out += n.message;
    out += '\n';
  }
  return out;
}

std::string render_text(const DiagnosticEngine& engine) {
  std::string out;
  for (const Diagnostic& d : engine.diagnostics()) out += render_text(d);
  std::size_t e = engine.error_count(), w = engine.warning_count();
  if (e || w) {
    if (e) out += std::to_string(e) + (e == 1 ? " error" : " errors");
    if (e && w) out += ", ";
    if (w) out += std::to_string(w) + (w == 1 ? " warning" : " warnings");
    out += " generated.\n";
  }
  return out;
}

std::string render_json(const DiagnosticEngine& engine) {
  std::string out = "{\n  \"diagnostics\": [\n";
  const auto& ds = engine.diagnostics();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Diagnostic& d = ds[i];
    out += "    {\"severity\": \"";
    out += severity_name(d.severity);
    out += "\", \"code\": \"";
    json_escape_into(out, d.code);
    out += "\", \"loc\": ";
    loc_json_into(out, d.loc);
    out += ", \"message\": \"";
    json_escape_into(out, d.message);
    out += "\", \"notes\": [";
    for (std::size_t j = 0; j < d.notes.size(); ++j) {
      out += "{\"loc\": ";
      loc_json_into(out, d.notes[j].loc);
      out += ", \"message\": \"";
      json_escape_into(out, d.notes[j].message);
      out += "\"}";
      if (j + 1 < d.notes.size()) out += ", ";
    }
    out += "]}";
    if (i + 1 < ds.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n";
  out += "  \"errors\": " + std::to_string(engine.error_count()) + ",\n";
  out += "  \"warnings\": " + std::to_string(engine.warning_count()) + "\n";
  out += "}\n";
  return out;
}

int exit_code(bool input_errors, bool degraded, bool violations) {
  if (input_errors) return 2;
  if (degraded) return 3;
  if (violations) return 1;
  return 0;
}

}  // namespace tv::diag
