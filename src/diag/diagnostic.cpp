#include "diag/diagnostic.hpp"

namespace tv::diag {

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    case Severity::Fatal: return "fatal error";
  }
  return "?";
}

Diagnostic& DiagnosticEngine::report(Severity sev, std::string code, SourceLoc loc,
                                     std::string message) {
  if (sev == Severity::Warning && opts_.werror) sev = Severity::Error;
  if (loc.file.empty()) loc.file = current_file_;
  bool is_error = sev == Severity::Error || sev == Severity::Fatal;
  if (is_error && limit_reached_) {
    scratch_ = Diagnostic{sev, std::move(code), std::move(loc), std::move(message), {}};
    return scratch_;
  }
  if (is_error) {
    ++error_count_;
  } else if (sev == Severity::Warning) {
    ++warning_count_;
  }
  diags_.push_back(Diagnostic{sev, std::move(code), std::move(loc), std::move(message), {}});
  Diagnostic& stored = diags_.back();
  if (is_error && opts_.max_errors > 0 && error_count_ >= opts_.max_errors &&
      !limit_reached_) {
    limit_reached_ = true;
    diags_.push_back(Diagnostic{Severity::Note, kErrTooManyErrors, SourceLoc{current_file_, 0, 0},
                                "too many errors, stopping now (use --max-errors to raise the limit)",
                                {}});
    // `stored` may have been invalidated by the push_back above.
    return diags_[diags_.size() - 2];
  }
  return stored;
}

Diagnostic& DiagnosticEngine::report(Severity sev, std::string code, int line, int column,
                                     std::string message) {
  return report(sev, std::move(code), SourceLoc{std::string(), line, column},
                std::move(message));
}

}  // namespace tv::diag
