// Renderers for collected diagnostics: the human text form written to
// stderr and the machine JSON form behind `scaldtv --diag-json`.
#pragma once

#include <string>

#include "diag/diagnostic.hpp"

namespace tv::diag {

/// Renders one diagnostic in the conventional compiler form:
///
///   file:line:col: error: message [SHDL-E012]
///     note: in expansion of macro "ALU_10181" instantiated at file:line
///
/// Unknown line/column components are omitted.
std::string render_text(const Diagnostic& d);

/// All diagnostics, one per line (notes indented under their parent), plus
/// a trailing "N error(s), M warning(s) generated." summary when anything
/// was reported.
std::string render_text(const DiagnosticEngine& engine);

/// JSON document: {"diagnostics": [...], "errors": N, "warnings": M}.
/// Schema documented in docs/diagnostics.md.
std::string render_json(const DiagnosticEngine& engine);

/// The scaldtv exit-code contract (documented in README.md):
///   2  usage or input errors (any error diagnostics)
///   3  resource-degraded run (completed, but partial results)
///   1  timing violations found
///   0  clean
/// Priority is top-down: input errors dominate degradation dominates
/// violations.
int exit_code(bool input_errors, bool degraded, bool violations);

}  // namespace tv::diag
