#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace tv {

std::string format_ns(Time t) {
  double ns = to_ns(t);
  char buf[64];
  // One decimal place mirrors the paper's listings (Fig 3-10 / 3-11 print
  // "11.5", "49.0", ...). Fall back to three places when the value needs
  // sub-0.1ns precision so no information is silently lost.
  double r1 = std::round(ns * 10.0) / 10.0;
  if (std::abs(r1 - ns) < 1e-9) {
    std::snprintf(buf, sizeof buf, "%.1f", ns);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", ns);
  }
  return buf;
}

}  // namespace tv
