// Small string helpers shared by the assertion parser and the HDL front end.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tv {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a delimiter character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Case-sensitive string → double, returning false on any trailing junk.
bool parse_double(std::string_view s, double& out);

/// Uppercases ASCII in place and returns the copy.
std::string upper(std::string_view s);

}  // namespace tv
