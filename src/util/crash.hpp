// Minimal fatal-signal handler for attributable crash reports.
//
// scaldtvd runs the verifier core as disposable worker processes; when one
// dies on SIGSEGV/SIGABRT the supervisor sees only the signal number. This
// handler makes the worker's own stderr carry the context -- which design
// was being verified and which phase was active -- before re-raising the
// signal with the default disposition, so the exit status the supervisor
// observes is unchanged (still signal-killed) but the crash is attributable
// from the worker's log.
//
// Everything in the handler is async-signal-safe: the context lives in
// fixed static buffers written by set_crash_context() and the handler uses
// only write(2).
#pragma once

namespace tv::crash {

/// Installs the handler for SIGSEGV, SIGABRT, SIGBUS, SIGFPE, and SIGILL.
/// Idempotent; call once near the top of main().
void install_handler();

/// Records what the process is doing. Either pointer may be null to leave
/// that field unchanged; pass "" to clear. Strings are copied (truncated to
/// an internal fixed size), so callers may pass temporaries.
void set_context(const char* design_path, const char* phase);

}  // namespace tv::crash
