#include "util/fault.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace tv::fault {

namespace {

enum class Action { Fail, Abort, Hang, Kill9, Bloat };

struct Entry {
  std::string site;
  std::uint64_t nth = 1;  // 1-based hit at which the fault fires
  Action action = Action::Fail;
  std::uint64_t hits = 0;
  bool fired = false;
};

// The plan is tiny (a handful of entries) and sites are checked by linear
// scan under one mutex; the disabled fast path below never takes it.
std::mutex g_mu;
std::vector<Entry> g_plan;
std::atomic<bool> g_enabled{false};

bool parse_entry(const std::string& text, Entry& e, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error) *error = "bad fault entry \"" + text + "\": " + why;
    return false;
  };
  std::size_t at = text.find('@');
  if (at == std::string::npos || at == 0) return fail("expected site@N:action");
  std::size_t colon = text.find(':', at);
  if (colon == std::string::npos) return fail("expected site@N:action");
  e.site = text.substr(0, at);
  std::string nth = text.substr(at + 1, colon - at - 1);
  if (nth.empty()) return fail("missing hit count");
  char* end = nullptr;
  unsigned long long n = std::strtoull(nth.c_str(), &end, 10);
  if (!end || *end != '\0' || n == 0) return fail("hit count must be a positive integer");
  e.nth = n;
  std::string action = text.substr(colon + 1);
  if (action == "fail") {
    e.action = Action::Fail;
  } else if (action == "abort") {
    e.action = Action::Abort;
  } else if (action == "hang") {
    e.action = Action::Hang;
  } else if (action == "kill9") {
    e.action = Action::Kill9;
  } else if (action == "bloat") {
    e.action = Action::Bloat;
  } else {
    return fail("action must be fail, abort, hang, kill9, or bloat");
  }
  return true;
}

}  // namespace

bool configure(const std::string& spec, std::string* error) {
  std::vector<Entry> plan;
  std::size_t from = 0;
  while (from < spec.size()) {
    std::size_t comma = spec.find(',', from);
    if (comma == std::string::npos) comma = spec.size();
    std::string part = spec.substr(from, comma - from);
    from = comma + 1;
    if (part.empty()) continue;
    Entry e;
    if (!parse_entry(part, e, error)) return false;
    plan.push_back(std::move(e));
  }
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan = std::move(plan);
  g_enabled.store(!g_plan.empty(), std::memory_order_release);
  return true;
}

void configure_from_env() {
  const char* spec = std::getenv("TV_FAULT");
  if (!spec || !*spec) return;
  std::string error;
  if (!configure(spec, &error)) {
    std::fprintf(stderr, "TV_FAULT ignored: %s\n", error.c_str());
  }
}

void reset() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan.clear();
  g_enabled.store(false, std::memory_order_release);
}

bool enabled() { return g_enabled.load(std::memory_order_acquire); }

bool plan_only_site(const char* site) {
  if (!g_enabled.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_plan.empty()) return false;
  for (const Entry& e : g_plan) {
    if (e.site != site) return false;
  }
  return true;
}

bool should_fail(const char* site) {
  if (!g_enabled.load(std::memory_order_acquire)) return false;
  Action action;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    Entry* hit = nullptr;
    for (Entry& e : g_plan) {
      if (e.site == site) {
        ++e.hits;
        if (!e.fired && e.hits == e.nth) {
          e.fired = true;
          hit = &e;
        }
        break;  // first entry for a site wins; one entry per site expected
      }
    }
    if (!hit) return false;
    action = hit->action;
  }
  switch (action) {
    case Action::Fail:
      return true;
    case Action::Abort:
      std::abort();
    case Action::Hang:
      // Parked, not spinning: the process stays alive and idle until the
      // supervisor's watchdog delivers SIGKILL.
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    case Action::Kill9:
      // Instant, uncatchable death -- no atexit handlers, no flushes. The
      // kill/restart chaos tests use this to prove the write-ahead journal
      // alone is enough to resume a batch (docs/recovery.md).
      raise(SIGKILL);
      return false;  // unreachable
    case Action::Bloat: {
      // Grow RSS steadily: allocate, touch, and leak 4 MiB chunks with a
      // short pause between them so a supervisor-side watchdog sampling
      // /proc/<pid>/statm sees the climb. Capped at 1 GiB as a safety net
      // against the kernel OOM killer; past the cap the thread parks like
      // `hang` and the watchdog (memory or time) reaps the worker.
      constexpr std::size_t kChunk = 4u << 20;
      constexpr std::size_t kCapBytes = 1u << 30;
      std::size_t grown = 0;
      while (grown < kCapBytes) {
        char* p = static_cast<char*>(std::malloc(kChunk));
        if (p) {
          std::memset(p, 0x5a, kChunk);  // touch every page: VA -> RSS
          grown += kChunk;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  }
  return false;
}

void check(const char* site) {
  if (should_fail(site)) {
    throw InjectedFault(std::string("injected fault at site \"") + site + "\"");
  }
}

std::uint64_t hits(const char* site) {
  std::lock_guard<std::mutex> lock(g_mu);
  for (const Entry& e : g_plan) {
    if (e.site == site) return e.hits;
  }
  return 0;
}

std::string describe() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_plan.empty()) return "off";
  std::string out;
  for (const Entry& e : g_plan) {
    if (!out.empty()) out += ',';
    out += e.site + "@" + std::to_string(e.nth) + ":";
    switch (e.action) {
      case Action::Fail: out += "fail"; break;
      case Action::Abort: out += "abort"; break;
      case Action::Hang: out += "hang"; break;
      case Action::Kill9: out += "kill9"; break;
      case Action::Bloat: out += "bloat"; break;
    }
  }
  return out;
}

}  // namespace tv::fault
