// Crash-safe file replacement (docs/recovery.md).
//
// Every durable artifact this project writes -- compiled designs,
// fixpoint snapshots, run manifests, regenerated goldens -- goes through
// atomic_write_file: the bytes land in a temporary file *in the target
// directory* (rename(2) is only atomic within one filesystem), are
// fsync'd, renamed over the destination, and the directory entry itself
// is fsync'd. A reader therefore sees either the complete old file or
// the complete new file; a crash mid-write can never leave a torn or
// half-length artifact behind, only an orphaned `.tmp.*` sibling that
// the next successful write of the same path cleans up.
#pragma once

#include <string>
#include <string_view>

namespace tv::util {

/// Atomically replaces `path` with `data`. Returns false and sets
/// *error (when non-null) on any failure; the destination is left
/// untouched in that case. The fsync of the file is mandatory; a
/// failed directory fsync is reported but the rename has already
/// happened (the data is safe on any journaling filesystem).
bool atomic_write_file(const std::string& path, std::string_view data,
                       std::string* error = nullptr);

}  // namespace tv::util
