// Time representation for the SCALD Timing Verifier reproduction.
//
// The paper (sec. 2.3) distinguishes two sets of units: absolute time
// (nanoseconds, used for component timing properties) and user-defined clock
// units (used for clock and stable assertions, scaling with the cycle time).
// Internally every time is an exact integer count of picoseconds so that
// interval arithmetic over the clock period never accumulates rounding error
// and waveform widths can be required to sum *exactly* to the period
// (sec. 2.8's consistency rule).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace tv {

/// Picosecond count. Signed so that skews and hold times may be negative
/// (the paper's register-file example uses a hold time of -1.0 nsec).
using Time = std::int64_t;

inline constexpr Time kPsPerNs = 1000;

/// Converts nanoseconds (the unit of every number printed in the paper) to
/// the internal picosecond Time. Rounds to the nearest picosecond.
constexpr Time from_ns(double ns) {
  return static_cast<Time>(ns * static_cast<double>(kPsPerNs) + (ns >= 0 ? 0.5 : -0.5));
}

/// Converts an internal Time back to nanoseconds for reporting.
constexpr double to_ns(Time t) { return static_cast<double>(t) / static_cast<double>(kPsPerNs); }

/// Formats a Time as the paper prints times: nanoseconds with a single
/// decimal place when fractional ("11.5"), no decimals when whole ("12.0"
/// is still printed as "12.0" to match Fig 3-10's fixed-point listing).
std::string format_ns(Time t);

/// Euclidean (always non-negative) remainder; used for circular waveform
/// arithmetic where delays and assertion times are taken modulo the period
/// (sec. 3.2: "the assertion specification is taken to be modulo the cycle
/// time").
constexpr Time floor_mod(Time a, Time m) {
  Time r = a % m;
  return r < 0 ? r + m : r;
}

/// A closed-open time range [begin, end). Ranges describing assertion
/// intervals may wrap around the period boundary once reduced modulo the
/// cycle time; wrap handling lives in the waveform code.
struct TimeRange {
  Time begin = 0;
  Time end = 0;
  constexpr Time width() const { return end - begin; }
  constexpr bool operator==(const TimeRange&) const = default;
};

/// A wall-clock budget shared across verification phases. One Deadline is
/// armed when the run starts (Verifier::verify) and every phase -- the base
/// fixpoint, each case snapshot, and the constraint checker -- polls the
/// *same* point in time, so a run with N cases cannot stretch a --time-limit
/// of S seconds into (N+2)*S. Default-constructed deadlines are unarmed and
/// never expire.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.armed_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  bool armed() const { return armed_; }
  bool expired() const { return armed_ && Clock::now() >= at_; }

 private:
  bool armed_ = false;
  Clock::time_point at_{};
};

/// Scale for user clock units (sec. 2.3). E.g. the Fig 2-5 example uses
/// 6.25 ns per clock unit, 8 units per 50 ns cycle.
class ClockUnits {
 public:
  ClockUnits() = default;
  explicit ClockUnits(Time ps_per_unit) : ps_per_unit_(ps_per_unit) {}
  static ClockUnits from_ns_per_unit(double ns) { return ClockUnits(from_ns(ns)); }

  Time ps_per_unit() const { return ps_per_unit_; }
  /// Converts a (possibly fractional) clock-unit count to picoseconds.
  Time to_time(double units) const {
    return static_cast<Time>(units * static_cast<double>(ps_per_unit_) +
                             (units >= 0 ? 0.5 : -0.5));
  }
  double from_time(Time t) const {
    return static_cast<double>(t) / static_cast<double>(ps_per_unit_);
  }

 private:
  Time ps_per_unit_ = kPsPerNs;  // default: 1 clock unit == 1 ns
};

}  // namespace tv
