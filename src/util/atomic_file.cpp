#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/fault.hpp"

namespace tv::util {
namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

// Writes the whole buffer, retrying short writes and EINTR.
bool write_all(int fd, std::string_view data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool atomic_write_file(const std::string& path, std::string_view data,
                       std::string* error) {
  // The temp file must live in the destination directory: rename(2) is
  // atomic only within a filesystem, and the directory fsync below must
  // cover both the old and the new entry.
  std::string dir = ".";
  std::string base = path;
  if (auto slash = path.find_last_of('/'); slash != std::string::npos) {
    dir = path.substr(0, slash);
    if (dir.empty()) dir = "/";
    base = path.substr(slash + 1);
  }
  // The temp name carries both the pid (no cross-process collisions) and a
  // process-wide counter (no collisions between two threads of one process
  // racing to replace the same path -- with a shared name, one thread's
  // rename could publish the other's half-written bytes).
  static std::atomic<unsigned long long> g_seq{0};
  std::string tmp = dir + "/." + base + ".tmp." + std::to_string(::getpid()) +
                    "." + std::to_string(g_seq.fetch_add(1, std::memory_order_relaxed));

  // Disk-pressure injection point (docs/serving.md): a planned io.write
  // fault behaves like ENOSPC -- the write fails cleanly before any bytes
  // land and the destination is left untouched.
  if (fault::should_fail("io.write")) {
    errno = ENOSPC;
    set_error(error, "cannot write " + path + " (injected io.write fault)");
    return false;
  }

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    set_error(error, "cannot create " + tmp);
    return false;
  }
  if (!write_all(fd, data)) {
    set_error(error, "cannot write " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  // The data fsync is the crash-consistency contract: after rename, any
  // reader that sees the new name must see the new bytes.
  if (::fsync(fd) != 0) {
    set_error(error, "cannot fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "cannot close " + tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "cannot rename " + tmp + " to " + path);
    ::unlink(tmp.c_str());
    return false;
  }
  // Persist the directory entry. The rename has already happened, so a
  // failure here (some filesystems reject directory fsync) degrades to
  // "durable at the filesystem's leisure" rather than undoing the write.
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

}  // namespace tv::util
