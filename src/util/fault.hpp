// Deterministic fault injection for robustness testing.
//
// A fault *plan* names injection sites compiled into the binary and, for
// each, the 1-based hit count at which the fault triggers and what happens
// then. Plans come from the TV_FAULT environment variable or the --fault
// flag, so the exact same failure -- an allocation that fails on the 37th
// intern, a worker that hangs on the 100th primitive evaluation -- can be
// replayed byte-for-byte in a test, in tvfuzz --serve-chaos, or in the CI
// chaos matrix.
//
// Spec grammar (documented in docs/serving.md):
//
//   spec   ::= entry (',' entry)*
//   entry  ::= site '@' nth ':' action
//   site   ::= dotted identifier, e.g. evaluator.eval, wave_table.intern
//   nth    ::= 1-based hit count at which the fault fires (once)
//   action ::= 'fail' | 'abort' | 'hang' | 'kill9' | 'bloat'
//
//   TV_FAULT="evaluator.eval@100:abort,io.read@1:fail"
//
// `fail` makes should_fail() return true (check() then throws
// InjectedFault, which drivers map to the transient exit code 5); `abort`
// raises SIGABRT at the site (a crash, from the supervisor's point of
// view); `hang` parks the thread in an interruptible sleep forever (the
// supervisor's watchdog kills it); `kill9` raises SIGKILL -- instant,
// uncatchable death with nothing flushed, the hammer the kill/restart
// chaos tests swing at the scaldtvd supervisor itself; `bloat` grows the
// process RSS without bound (touched, leaked allocations) so the
// supervisor's --mem-limit-mb watchdog has something deterministic to
// catch -- after a safety cap it parks like `hang` so an uncapped run
// still ends via the watchdog instead of the kernel OOM killer.
//
// Sites compiled into this repo:
//   evaluator.eval    once per primitive evaluation in the base fixpoint
//   snapshot.case     once per case evaluated on a snapshot
//   wave_table.intern once per waveform intern (simulated allocation)
//   io.read           design / job file reads in scaldtv and scaldtvd
//   io.write          durable file writes: atomic_write_file (snapshots,
//                     compiled artifacts, manifests, warm-pool sidecars)
//                     and write-ahead journal appends -- the ENOSPC-shaped
//                     disk-pressure site
//   serve.spawn       worker process launch in the scaldtvd supervisor
//   serve.kill9       after every write-ahead journal append in the
//                     supervisor (armed with kill9: the daemon dies
//                     mid-batch at a seeded transition; scaldtvd --resume
//                     must finish the batch with an identical manifest)
//   incremental.apply before a reverify delta is applied (baseline intact)
//   incremental.cone  before incremental cone re-evaluation (netlist edited)
//
// The layer is off (and a single relaxed atomic load) unless a plan is
// configured, so clean-run behavior and reports are untouched.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tv::fault {

/// Thrown by check() when a `fail` action fires. Drivers treat it like a
/// transient environment failure (I/O error, allocation failure).
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Replaces the active plan with `spec` (empty spec = clear). Returns false
/// and sets *error on a malformed spec, leaving the previous plan in place.
bool configure(const std::string& spec, std::string* error = nullptr);

/// Loads the plan from TV_FAULT if set and nonempty. Malformed specs are
/// reported on stderr and ignored (a chaos harness must not turn a typo
/// into silent clean runs -- the message names the bad entry).
void configure_from_env();

/// Clears the plan and every hit counter.
void reset();

/// True when any plan entry is active.
bool enabled();

/// True when a plan is active and every entry targets `site`. Warm workers
/// use this to keep snapshot sidecar writes on under a pure disk-pressure
/// plan (io.write) -- such a plan cannot perturb evaluation, so the
/// "never snapshot under faults" rule would only hide the ENOSPC path the
/// plan exists to exercise.
bool plan_only_site(const char* site);

/// The injection point. Counts a hit at `site`; when the armed entry for
/// this site reaches its hit count: action `fail` returns true (exactly
/// once), `abort` raises SIGABRT, `hang` sleeps forever. Otherwise -- and
/// always when no plan is configured -- returns false.
bool should_fail(const char* site);

/// Convenience wrapper: throws InjectedFault when should_fail(site).
void check(const char* site);

/// Hits recorded at `site` since the last configure()/reset(). Zero when
/// the layer is disabled (hits are only counted for planned sites).
std::uint64_t hits(const char* site);

/// One-line description of the active plan ("off" when disabled).
std::string describe();

}  // namespace tv::fault
