#include "util/crash.hpp"

#include <csignal>
#include <cstring>

#include <unistd.h>

namespace tv::crash {

namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

// Fixed buffers: a signal handler cannot allocate, so the context is copied
// here up front. Plain (non-atomic) chars are fine -- the handler runs on
// the faulting thread and a torn read at worst garbles the report text.
char g_design[512] = "";
char g_phase[64] = "";
bool g_installed = false;

void copy_into(char* dst, std::size_t cap, const char* src) {
  std::size_t i = 0;
  for (; src[i] && i + 1 < cap; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

void write_str(const char* s) {
  std::size_t n = std::strlen(s);
  while (n > 0) {
    ssize_t w = write(STDERR_FILENO, s, n);
    if (w <= 0) return;
    s += w;
    n -= static_cast<std::size_t>(w);
  }
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
  }
  return "fatal signal";
}

void handler(int sig) {
  write_str("scaldtv: fatal ");
  write_str(signal_name(sig));
  if (g_phase[0]) {
    write_str(" during ");
    write_str(g_phase);
  }
  if (g_design[0]) {
    write_str(" of ");
    write_str(g_design);
  }
  write_str("\n");
  // Restore the default disposition and re-raise so the process still dies
  // by this signal (supervisors classify on the wait status, and core dumps
  // keep working).
  std::signal(sig, SIG_DFL);
  raise(sig);
}

}  // namespace

void install_handler() {
  if (g_installed) return;
  g_installed = true;
  for (int sig : kFatalSignals) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = handler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESETHAND: the handler restores SIG_DFL itself before re-raise.
    sigaction(sig, &sa, nullptr);
  }
}

void set_context(const char* design_path, const char* phase) {
  if (design_path) copy_into(g_design, sizeof g_design, design_path);
  if (phase) copy_into(g_phase, sizeof g_phase, phase);
}

}  // namespace tv::crash
