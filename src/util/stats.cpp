#include "util/stats.hpp"

#include <cstdio>

namespace tv {

void PhaseTimer::start(const std::string& phase) {
  if (running_) stop();
  phases_.emplace_back(phase, 0.0);
  started_ = Clock::now();
  running_ = true;
}

void PhaseTimer::stop() {
  if (!running_) return;
  auto elapsed = std::chrono::duration<double>(Clock::now() - started_).count();
  phases_.back().second = elapsed;
  running_ = false;
}

double PhaseTimer::total_seconds() const {
  double t = 0;
  for (const auto& [name, secs] : phases_) t += secs;
  return t;
}

void StorageLedger::add(const std::string& category, std::size_t bytes) {
  categories_[category] += bytes;
}

std::size_t StorageLedger::total() const {
  std::size_t t = 0;
  for (const auto& [name, bytes] : categories_) t += bytes;
  return t;
}

std::string StorageLedger::to_table() const {
  std::string out;
  char line[160];
  std::size_t tot = total();
  for (const auto& [name, bytes] : categories_) {
    double pct = tot ? 100.0 * static_cast<double>(bytes) / static_cast<double>(tot) : 0.0;
    std::snprintf(line, sizeof line, "  %-28s %12zu bytes  %5.1f%%\n", name.c_str(), bytes, pct);
    out += line;
  }
  std::snprintf(line, sizeof line, "  %-28s %12zu bytes  100.0%%\n", "TOTAL", tot);
  out += line;
  return out;
}

}  // namespace tv
