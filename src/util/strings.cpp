#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace tv {

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ 11+.
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace tv
