// Execution/storage statistics plumbing used to regenerate the paper's
// Tables 3-1 and 3-3: phase stopwatches and a byte-accounting ledger that
// mirrors the thesis' storage-category breakdown.
#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace tv {

/// Wall-clock stopwatch for one named processing phase (Table 3-1 rows such
/// as "Reading input files and building data structures").
class PhaseTimer {
 public:
  void start(const std::string& phase);
  void stop();
  /// Phase name → elapsed seconds, in start order.
  const std::vector<std::pair<std::string, double>>& phases() const { return phases_; }
  double total_seconds() const;

 private:
  using Clock = std::chrono::steady_clock;
  std::vector<std::pair<std::string, double>> phases_;
  Clock::time_point started_{};
  bool running_ = false;
};

/// Byte-accounting ledger for Table 3-3 ("Storage required by Timing
/// Verifier"). Categories mirror the thesis: circuit description, signal
/// values, signal names, string space, call list array, miscellaneous.
class StorageLedger {
 public:
  void add(const std::string& category, std::size_t bytes);
  std::size_t total() const;
  const std::map<std::string, std::size_t>& categories() const { return categories_; }
  /// Renders the Table 3-3 style listing (bytes and percent per category).
  std::string to_table() const;

 private:
  std::map<std::string, std::size_t> categories_;
};

}  // namespace tv
