// Probability-based timing analysis (thesis sec. 4.2.4, after DIGSIM
// [Ma77a, Ma77b]).
//
// The Timing Verifier proper is minimum/maximum-based. The thesis discusses
// the alternative: give every propagation delay a distribution (DIGSIM
// assumes normal), combine distributions along paths, and check constraints
// to a chosen confidence level. The promise is less pessimism ("a real
// design usually could be made to run faster than [the min/max] system will
// predict" -- the probability that *every* element on a path sits at its
// extreme is tiny); the documented danger is correlation: components from
// one production run may all be slow together, and then the independent
// model is wrong ("taking into account any correlations is essential to
// avoid incorrect predictions").
//
// This module implements both sides so the trade-off can be measured:
//   * delay distributions derived from the min/max ranges (min/max = +-3
//     sigma by default, or explicitly specified);
//   * path analysis propagating (mean, variance) with a pairwise
//     correlation coefficient rho between element delays: rho = 0 is the
//     DIGSIM independence assumption, rho = 1 makes the k-sigma result
//     collapse back to the worst-case sum;
//   * a Monte Carlo validator that samples concrete delays and empirically
//     checks the predicted quantiles.
#pragma once

#include <cstdint>
#include <vector>

#include "core/netlist.hpp"

namespace tv::stat {

/// A normal delay model N(mean, sigma^2), in nanoseconds.
struct DelayDist {
  double mean_ns = 0;
  double sigma_ns = 0;
};

/// Derives the distribution from a min/max specification: mean at the
/// center, the range spanning +-3 sigma (manufacturers test and sort to
/// min/max; this is the conventional reconstruction).
DelayDist dist_from_range(Time dmin, Time dmax);

struct StatOptions {
  /// Confidence multiplier: constraints are checked at mean + k * sigma.
  double k_sigma = 3.0;
  /// Pairwise correlation rho between the delays of distinct elements on a
  /// path. 0 = independent (DIGSIM); 1 = perfectly correlated (same wafer/
  /// production run), which reproduces the min/max worst case at 3 sigma.
  double rho = 0.0;
  /// Search depth limit, as in the path searcher.
  std::size_t search_limit = 64;
  /// Default interconnection delay for signals without an override
  /// (sec. 2.5.3), included in every hop like the verifier does.
  WireDelay default_wire{0, 0};
};

/// One register-to-register (or input-to-capture) path with its delay
/// distribution and the min/max bounds for comparison.
struct StatPath {
  SignalId from = kNoSignal;
  SignalId to = kNoSignal;
  std::vector<PrimId> prims;
  double mean_ns = 0;
  double var_ns2 = 0;        // includes the pairwise correlation terms
  double worst_ns = 0;       // min/max-based worst case (sum of maxima)
  double best_ns = 0;        // sum of minima
  /// Latest arrival at the chosen confidence: mean + k * sigma.
  double latest(double k_sigma) const;
};

struct StatResult {
  std::vector<StatPath> paths;  // sorted by latest() descending
  /// The slowest path's latest arrival at k sigma and the corresponding
  /// min/max worst case: the pessimism gap the thesis discusses.
  double predicted_critical_ns = 0;
  double worst_case_critical_ns = 0;
};

/// Runs statistical worst-path analysis on a finalized netlist, using the
/// same launch/capture discovery as the path-search baseline.
StatResult analyze_statistical(const Netlist& nl, const StatOptions& opts = {});

/// Monte Carlo validation: samples concrete element delays (clamped
/// normals, with correlation rho implemented as a shared production-run
/// component) for `trials` trials and returns the empirical q-quantile of
/// the critical-path delay. Used to check predicted_critical_ns.
double monte_carlo_critical_ns(const Netlist& nl, const StatOptions& opts, int trials,
                               double quantile, std::uint64_t seed = 1);

}  // namespace tv::stat
