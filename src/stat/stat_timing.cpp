#include "stat/stat_timing.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "pathsearch/path_search.hpp"

namespace tv::stat {

DelayDist dist_from_range(Time dmin, Time dmax) {
  DelayDist d;
  d.mean_ns = (to_ns(dmin) + to_ns(dmax)) / 2.0;
  d.sigma_ns = (to_ns(dmax) - to_ns(dmin)) / 6.0;  // min/max at +-3 sigma
  return d;
}

double StatPath::latest(double k_sigma) const {
  return mean_ns + k_sigma * std::sqrt(var_ns2);
}

namespace {

// The delay elements along one path: each hop contributes the consumed
// signal's interconnection delay plus the primitive's propagation delay
// (matching PathSearcher::dfs's accumulation).
struct Element {
  DelayDist dist;
  double min_ns = 0, max_ns = 0;
};

std::vector<Element> path_elements(const Netlist& nl, const pathsearch::PathReport& pr,
                                   const WireDelay& default_wire) {
  std::vector<Element> out;
  SignalId sig = pr.from;
  for (PrimId pid : pr.prims) {
    const Primitive& p = nl.prim(pid);
    WireDelay w = nl.signal(sig).wire_delay.value_or(default_wire);
    Element wire_el{dist_from_range(w.dmin, w.dmax), to_ns(w.dmin), to_ns(w.dmax)};
    if (wire_el.max_ns > 0) out.push_back(wire_el);
    out.push_back(Element{dist_from_range(p.dmin, p.dmax), to_ns(p.dmin), to_ns(p.dmax)});
    sig = p.output;
  }
  return out;
}

StatPath make_stat_path(const Netlist& nl, const pathsearch::PathReport& pr,
                        const StatOptions& opts) {
  StatPath sp;
  sp.from = pr.from;
  sp.to = pr.to;
  sp.prims = pr.prims;
  double sum_sigma = 0, sum_var = 0;
  for (const Element& e : path_elements(nl, pr, opts.default_wire)) {
    sp.mean_ns += e.dist.mean_ns;
    sum_var += e.dist.sigma_ns * e.dist.sigma_ns;
    sum_sigma += e.dist.sigma_ns;
    sp.worst_ns += e.max_ns;
    sp.best_ns += e.min_ns;
  }
  // Var(sum) with pairwise correlation rho between all element pairs:
  // (1 - rho) * sum(sigma_i^2) + rho * (sum(sigma_i))^2.
  sp.var_ns2 = (1.0 - opts.rho) * sum_var + opts.rho * sum_sigma * sum_sigma;
  return sp;
}

}  // namespace

StatResult analyze_statistical(const Netlist& nl, const StatOptions& opts) {
  pathsearch::PathSearchOptions ps_opts;
  ps_opts.search_limit = opts.search_limit;
  ps_opts.max_paths = 1u << 14;
  pathsearch::PathSearcher searcher(nl, ps_opts);
  pathsearch::PathSearchResult pr = searcher.analyze();

  StatResult out;
  out.paths.reserve(pr.paths.size());
  for (const auto& p : pr.paths) out.paths.push_back(make_stat_path(nl, p, opts));
  std::sort(out.paths.begin(), out.paths.end(), [&](const StatPath& a, const StatPath& b) {
    return a.latest(opts.k_sigma) > b.latest(opts.k_sigma);
  });
  for (const StatPath& p : out.paths) {
    out.predicted_critical_ns = std::max(out.predicted_critical_ns, p.latest(opts.k_sigma));
    out.worst_case_critical_ns = std::max(out.worst_case_critical_ns, p.worst_ns);
  }
  return out;
}

double monte_carlo_critical_ns(const Netlist& nl, const StatOptions& opts, int trials,
                               double quantile, std::uint64_t seed) {
  pathsearch::PathSearchOptions ps_opts;
  ps_opts.search_limit = opts.search_limit;
  ps_opts.max_paths = 1u << 14;
  pathsearch::PathSearcher searcher(nl, ps_opts);
  pathsearch::PathSearchResult pr = searcher.analyze();

  // Element list per path (elements are per-(path,hop); a shared primitive
  // appearing on two paths gets the same sample within a trial).
  struct Hop {
    std::size_t element;  // index into the global element table
  };
  std::vector<Element> elements;
  std::vector<std::vector<std::size_t>> path_hops;
  // Key elements by (prim id) so shared gates share samples; wire elements
  // keyed by signal id with an offset.
  std::vector<std::ptrdiff_t> prim_to_element(nl.num_prims(), -1);
  std::vector<std::ptrdiff_t> sig_to_element(nl.num_signals(), -1);
  for (const auto& p : pr.paths) {
    std::vector<std::size_t> hops;
    SignalId sig = p.from;
    for (PrimId pid : p.prims) {
      const Primitive& prim = nl.prim(pid);
      WireDelay w = nl.signal(sig).wire_delay.value_or(opts.default_wire);
      if (w.dmax > 0) {
        if (sig_to_element[sig] < 0) {
          sig_to_element[sig] = static_cast<std::ptrdiff_t>(elements.size());
          elements.push_back(
              Element{dist_from_range(w.dmin, w.dmax), to_ns(w.dmin), to_ns(w.dmax)});
        }
        hops.push_back(static_cast<std::size_t>(sig_to_element[sig]));
      }
      if (prim_to_element[pid] < 0) {
        prim_to_element[pid] = static_cast<std::ptrdiff_t>(elements.size());
        elements.push_back(
            Element{dist_from_range(prim.dmin, prim.dmax), to_ns(prim.dmin), to_ns(prim.dmax)});
      }
      hops.push_back(static_cast<std::size_t>(prim_to_element[pid]));
      sig = prim.output;
    }
    path_hops.push_back(std::move(hops));
  }

  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal(0.0, 1.0);
  std::vector<double> samples(elements.size());
  std::vector<double> criticals;
  criticals.reserve(static_cast<std::size_t>(trials));
  const double ind = std::sqrt(1.0 - opts.rho);
  const double shared_w = std::sqrt(opts.rho);
  for (int t = 0; t < trials; ++t) {
    double shared = normal(rng);  // the "production run" component
    for (std::size_t i = 0; i < elements.size(); ++i) {
      const Element& e = elements[i];
      double z = ind * normal(rng) + shared_w * shared;
      double d = e.dist.mean_ns + e.dist.sigma_ns * z;
      samples[i] = std::clamp(d, e.min_ns, e.max_ns);  // parts are tested/sorted
    }
    double crit = 0;
    for (const auto& hops : path_hops) {
      double sum = 0;
      for (std::size_t h : hops) sum += samples[h];
      crit = std::max(crit, sum);
    }
    criticals.push_back(crit);
  }
  std::sort(criticals.begin(), criticals.end());
  std::size_t idx = static_cast<std::size_t>(quantile * (criticals.size() - 1));
  return criticals[idx];
}

}  // namespace tv::stat
