// Warm in-process worker pool for scaldtvd.
//
// The fork/exec backend pays the full cold-start price on every attempt:
// process creation, dynamic loading, HDL parse + macro expansion (or
// artifact load), and an empty waveform-intern table. The warm pool keeps
// one resident worker process per distinct design alive across jobs: the
// worker loads the design once, constructs one long-lived Verifier (whose
// WaveformTable and EvalMemo stay populated), and then serves "run"
// commands over a pipe, answering each with the exit code scaldtv would
// have produced.
//
// Protocol (newline-delimited text, parent -> worker on the command pipe,
// worker -> parent on the response pipe):
//
//   run <time_limit> <jobs> <fault-spec|-> <delta-path|->   one job
//   done <code> [nodur]                        its scaldtv-compatible exit code
//
// The optional "nodur" token reports that the run wanted to persist its
// fixpoint sidecar but the filesystem refused the write (ENOSPC-shaped):
// the verdict stands, the worker serves on without durability, and the
// parent counts the degradation into Manifest::durability_degraded.
//
// A non-"-" delta path makes the run a reverify job (scaldtv --reverify):
// after the baseline verification the worker applies the JSON netlist delta
// and reports on the edited design. The worker then restores its resident
// baseline by applying the inverse delta; if the restore fails for any
// reason it drops the loaded design entirely, so a later job can never see
// a half-edited netlist.
//
// Crash isolation is preserved, not traded away:
//   * every worker is still a separate process -- a crashing or hanging
//     design kills its worker, never the daemon;
//   * the supervisor's watchdog SIGKILLs the worker pid exactly as it
//     would a fork/exec worker; the backend reports the signal death and
//     the next attempt gets a fresh process;
//   * a worker is returned to the idle pool only after answering with a
//     verdict (exit 0/1/3). Any other response or death recycles it, so
//     retry semantics ("attempt 1 dies, attempt 2 runs clean") hold with
//     identical manifests.
//
// Fault injection rides the protocol instead of TV_FAULT: the parent
// computes the same effective per-attempt spec as the fork/exec backend
// (effective_fault_spec) and sends it with each run command; the worker
// reconfigures its fault plan per run, so @N counters count within one
// job exactly as they do in a freshly exec'd scaldtv.
#pragma once

#include <memory>
#include <string>

#include "serve/supervisor.hpp"

namespace tv::serve {

/// Builds the warm-pool backend. `opts` must outlive it. Destroying the
/// backend SIGKILLs and reaps every resident worker. The constructor
/// ignores SIGPIPE process-wide: writing a command to a worker that just
/// died must surface as a failed launch, not kill the daemon.
///
/// When opts.max_resident > 0 the idle pool is bounded: returning a worker
/// that would push the idle count past the cap retires the least-recently-
/// used resident instead of keeping it (counted in Manifest::evictions),
/// and workers run with fixpoint snapshots enabled so an evicted design's
/// next process warm-starts from its `.tvf` sidecar.
std::unique_ptr<WorkerBackend> make_warm_pool_backend(const SupervisorOptions& opts);

/// Body of a resident worker (the child side of the protocol). Loads
/// `design` lazily on the first run command, keeps the Verifier warm, and
/// loops until the command pipe reaches EOF. Returns the worker's final
/// exit status. Exposed for tests.
///
/// With `snapshot` set the worker participates in eviction recovery
/// (docs/recovery.md): before the first cold baseline it tries to restore
/// the design's `.tvf` sidecar (core/fixpoint.hpp) -- answering the first
/// job from the restored fixed point with zero evaluations -- and after a
/// clean convergent cold baseline it writes that sidecar atomically. A
/// missing, stale, or unreadable sidecar silently falls back to the cold
/// path; the snapshot is a warm-start optimization, never a correctness
/// dependency.
int warm_worker_main(const std::string& design, bool stdlib, bool compiled,
                     bool snapshot, int cmd_fd, int resp_fd);

/// Installs a std::set_new_handler for a resident worker: on allocation
/// exhaustion it answers "done 5" on `resp_fd` (async-signal-safe write)
/// and _exit(5)s -- the clean transient exit -- instead of letting a
/// std::bad_alloc unwind through the pipe protocol, where a half-written
/// response line would be reported as a protocol violation (a lost
/// attempt) rather than a retryable transient. warm_worker_main installs
/// it; exposed separately for tests.
void warm_worker_install_oom_handler(int resp_fd);

}  // namespace tv::serve
