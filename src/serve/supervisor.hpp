// Crash-isolated job supervisor for scaldtvd.
//
// Each verification job runs in its own worker process (fork/exec of
// scaldtv), so a crashing, hanging, or resource-exhausted design takes down
// one worker, never the daemon or the rest of the batch. The supervisor:
//
//   * keeps at most `workers` jobs in flight, launching from a FIFO queue;
//   * arms a per-job wall-clock watchdog (the job's --time-limit budget
//     plus `watchdog_slack` to let the worker degrade gracefully first;
//     jobs with no limit get `default_timeout`) and SIGKILLs overruns;
//   * classifies worker exits: 0/1/2/3 are terminal (mapped to JobStates),
//     exit 5 (transient environment failure) and any signal death are
//     retried with exponential backoff + deterministic jitter, up to
//     `max_attempts`; exhausted retries become JobState::Crashed (exit 4);
//   * on SIGTERM/SIGINT (signalled via *shutdown) stops launching, lets
//     running workers finish (watchdogs stay armed), and records pending
//     and backing-off jobs as Requeued in the manifest;
//   * enforces the overload policy (docs/serving.md): per-job RSS budgets
//     (mem_limit_mb -> ResourceExhausted), bounded admission (max_queue ->
//     Shed), and the poison-design circuit breaker (quarantine_after ->
//     Quarantined), all journaled so --resume replays them identically;
//   * winds down loudly (draining, jobs Requeued) the moment the
//     write-ahead journal latches a failed append -- a batch that cannot
//     be journaled must not pretend to be durable.
//
// Determinism: backoff jitter is a pure function of (job id, attempt,
// seed), and the manifest is sorted by id with no timestamps, so a batch
// replayed with the same seed and fault plan produces a byte-identical
// manifest regardless of worker scheduling.
#pragma once

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

#include "serve/job.hpp"
#include "serve/manifest.hpp"

namespace tv::serve {

class Journal;
struct JournalReplay;

struct SupervisorOptions {
  std::string scaldtv_path = "scaldtv";  // worker binary (execvp semantics)
  unsigned workers = 1;                  // max jobs in flight
  int max_attempts = 3;                  // launches per job before Crashed
  std::uint64_t backoff_base_ms = 100;   // first retry delay
  std::uint64_t backoff_max_ms = 5000;   // delay cap
  double watchdog_slack = 2.0;           // seconds past --time-limit
  double default_timeout = 0;            // watchdog for no-limit jobs (0 = none)
  std::uint64_t jitter_seed = 0;         // keys the deterministic jitter
  // TV_FAULT spec forced into every worker's environment (daemon-level
  // chaos, on top of per-job `fault` specs). Applied with the same
  // fault_attempts gating rules -- here, every attempt.
  std::string fault_spec;
  // Set to nonzero (by a signal handler) to request graceful shutdown.
  volatile std::sig_atomic_t* shutdown = nullptr;
  bool verbose = false;  // per-attempt progress lines on stderr
  // Keep one warm worker process per distinct design alive across jobs
  // (serve/warm_pool.hpp) instead of fork/exec-ing scaldtv per attempt.
  // Crash isolation is unchanged: a worker that exits with anything but a
  // verdict (0/1/3) is discarded and the next attempt gets a fresh process.
  bool warm = false;
  // Cap on idle resident workers the warm pool keeps alive between jobs
  // (0 = unlimited). When a verdict would push the idle pool past the cap
  // the least-recently-used resident is retired and counted in the
  // manifest's "evictions" field. With the cap on, workers persist each
  // design's fixpoint snapshot (<design>.tvf, core/fixpoint.hpp) after its
  // first clean baseline, so an evicted design's next worker restores the
  // warm baseline from the sidecar instead of re-verifying cold. Only
  // meaningful with warm = true.
  std::size_t max_resident = 0;
  // Write-ahead job journal (serve/journal.hpp): every launch / outcome /
  // settle transition is appended+fsync'd before the batch proceeds. After
  // each append the supervisor touches the serve.kill9 fault site, so the
  // chaos tests can SIGKILL the daemon at any seeded transition and prove
  // --resume finishes the batch with a byte-identical manifest. Null = no
  // journaling.
  Journal* journal = nullptr;
  // Replayed prior run (scaldtvd --resume): jobs whose replayed outcomes
  // already settle them are carried straight into the manifest without
  // relaunching; the rest re-enter the queue with their attempt counts and
  // outcome histories preserved. Null = fresh batch.
  const JournalReplay* resume = nullptr;
  // Per-job memory budget in MiB (0 = none). Enforced by a supervisor-side
  // /proc/<pid>/statm RSS watchdog on running workers (both backends) plus
  // a setrlimit(RLIMIT_DATA) backstop in fork/exec children (skipped under
  // ASan, whose shadow mappings would trip it at startup). A breach is the
  // deterministic outcome "mem-limit", never a raw SIGKILL mystery: the
  // job settles ResourceExhausted immediately, or -- with mem_retry -- is
  // retried like a transient and settles ResourceExhausted only once
  // attempts are exhausted with the final attempt still breaching.
  long mem_limit_mb = 0;
  bool mem_retry = false;
  // Bounded admission (0 = unbounded): only the first max_queue jobs by
  // input order are admitted; the rest settle as JobState::Shed at batch
  // start. Keyed to input order, not runtime scheduling, so a resumed
  // batch sheds exactly the same jobs.
  long max_queue = 0;
  // Poison-design circuit breaker (0 = disabled): after quarantine_after
  // consecutive Crashed/ResourceExhausted settlements of jobs sharing a
  // design key (content hash of the design artifact + front-end mode
  // flags), the breaker trips and every not-yet-attempted job with that
  // key fast-fails as JobState::Quarantined. To make "consecutive" well
  // defined under parallelism, jobs sharing a key are serialized in input
  // order while the breaker is enabled.
  int quarantine_after = 0;
};

/// Deterministic backoff delay before `attempt`+1 (attempt is the 1-based
/// number of the launch that just failed): min(base * 2^(attempt-1), max)
/// plus jitter in [0, base) derived from (job_id, attempt, seed), the total
/// clamped to max -- backoff_max_ms is a hard ceiling on the delay, jitter
/// included.
std::uint64_t backoff_delay_ms(const SupervisorOptions& opts,
                               const std::string& job_id, int attempt);

/// One poll of a running attempt.
struct WorkerPoll {
  enum class Kind {
    Running,   // still going
    Exited,    // finished with `value` as its exit code
    Signaled,  // killed by signal `value` (or lost: treated as SIGKILL)
  };
  Kind kind = Kind::Running;
  int value = 0;
};

/// How the supervisor obtains worker processes. The retry/watchdog/drain
/// state machine in run_jobs is backend-agnostic: it launches an attempt,
/// polls it, and may kill it; the backend decides whether that means a
/// fresh fork/exec of scaldtv or a command dispatched to a warm resident
/// worker. launch() returns the pid to poll/kill, or -1 for a spawn
/// failure (treated as a transient worker loss).
class WorkerBackend {
 public:
  virtual ~WorkerBackend() = default;
  virtual pid_t launch(const JobSpec& job, int attempt) = 0;
  virtual WorkerPoll poll(pid_t pid) = 0;
  virtual void kill_worker(pid_t pid) = 0;
  /// Resident workers retired by the max_resident LRU cap so far. Backends
  /// without a resident pool report 0, which keeps manifests byte-identical
  /// across backends when no cap is configured.
  virtual std::size_t evictions() const { return 0; }
  /// Durable writes the backend's workers had to skip because the
  /// filesystem refused them (warm-pool snapshot sidecars under disk
  /// pressure). Feeds the manifest's durability_degraded counter; backends
  /// without durable writes report 0.
  virtual std::size_t durability_degraded() const { return 0; }
};

/// The classic backend: one fork/exec of `opts.scaldtv_path` per attempt.
/// `opts` must outlive the backend.
std::unique_ptr<WorkerBackend> make_fork_exec_backend(const SupervisorOptions& opts);

/// The fault spec this attempt runs under: the job's own fault wins (gated
/// on fault_attempts), else the daemon-wide spec, else null. Shared by both
/// backends so fork/exec (TV_FAULT env) and warm workers (spec sent over
/// the command pipe) gate injection identically.
const std::string* effective_fault_spec(const JobSpec& job,
                                        const SupervisorOptions& opts,
                                        int attempt);

/// Resident set size of `pid` in bytes via /proc/<pid>/statm, or -1 when
/// the process is gone or /proc is unreadable. Shared by the supervisor's
/// per-job RSS watchdog and the warm pool's between-jobs soft check.
long worker_rss_bytes(pid_t pid);

/// Runs every job to a terminal state (or Requeued under shutdown) and
/// returns the manifest. Jobs are launched in input order; results are
/// keyed by id, so output order does not depend on scheduling. The
/// two-argument form picks the backend from opts.warm.
Manifest run_jobs(const std::vector<JobSpec>& jobs, const SupervisorOptions& opts);
Manifest run_jobs(const std::vector<JobSpec>& jobs, const SupervisorOptions& opts,
                  WorkerBackend& backend);

}  // namespace tv::serve
