// Crash-isolated job supervisor for scaldtvd.
//
// Each verification job runs in its own worker process (fork/exec of
// scaldtv), so a crashing, hanging, or resource-exhausted design takes down
// one worker, never the daemon or the rest of the batch. The supervisor:
//
//   * keeps at most `workers` jobs in flight, launching from a FIFO queue;
//   * arms a per-job wall-clock watchdog (the job's --time-limit budget
//     plus `watchdog_slack` to let the worker degrade gracefully first;
//     jobs with no limit get `default_timeout`) and SIGKILLs overruns;
//   * classifies worker exits: 0/1/2/3 are terminal (mapped to JobStates),
//     exit 5 (transient environment failure) and any signal death are
//     retried with exponential backoff + deterministic jitter, up to
//     `max_attempts`; exhausted retries become JobState::Crashed (exit 4);
//   * on SIGTERM/SIGINT (signalled via *shutdown) stops launching, lets
//     running workers finish (watchdogs stay armed), and records pending
//     and backing-off jobs as Requeued in the manifest.
//
// Determinism: backoff jitter is a pure function of (job id, attempt,
// seed), and the manifest is sorted by id with no timestamps, so a batch
// replayed with the same seed and fault plan produces a byte-identical
// manifest regardless of worker scheduling.
#pragma once

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/job.hpp"
#include "serve/manifest.hpp"

namespace tv::serve {

struct SupervisorOptions {
  std::string scaldtv_path = "scaldtv";  // worker binary (execvp semantics)
  unsigned workers = 1;                  // max jobs in flight
  int max_attempts = 3;                  // launches per job before Crashed
  std::uint64_t backoff_base_ms = 100;   // first retry delay
  std::uint64_t backoff_max_ms = 5000;   // delay cap
  double watchdog_slack = 2.0;           // seconds past --time-limit
  double default_timeout = 0;            // watchdog for no-limit jobs (0 = none)
  std::uint64_t jitter_seed = 0;         // keys the deterministic jitter
  // TV_FAULT spec forced into every worker's environment (daemon-level
  // chaos, on top of per-job `fault` specs). Applied with the same
  // fault_attempts gating rules -- here, every attempt.
  std::string fault_spec;
  // Set to nonzero (by a signal handler) to request graceful shutdown.
  volatile std::sig_atomic_t* shutdown = nullptr;
  bool verbose = false;  // per-attempt progress lines on stderr
};

/// Deterministic backoff delay before `attempt`+1 (attempt is the 1-based
/// number of the launch that just failed): min(base * 2^(attempt-1), max)
/// plus jitter in [0, base) derived from (job_id, attempt, seed).
std::uint64_t backoff_delay_ms(const SupervisorOptions& opts,
                               const std::string& job_id, int attempt);

/// Runs every job to a terminal state (or Requeued under shutdown) and
/// returns the manifest. Jobs are launched in input order; results are
/// keyed by id, so output order does not depend on scheduling.
Manifest run_jobs(const std::vector<JobSpec>& jobs, const SupervisorOptions& opts);

}  // namespace tv::serve
