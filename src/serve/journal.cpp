#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/fault.hpp"

namespace tv::serve {

namespace {

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a_str(const std::string& s, std::uint64_t h) {
  // Length-prefixed so adjacent fields cannot alias ("ab"+"c" vs "a"+"bc").
  std::uint64_t n = s.size();
  h = fnv1a(&n, sizeof n, h);
  return fnv1a(s.data(), s.size(), h);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 16);
  if (!end || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

// Same minimal flat-object scanner the job parser uses (serve/job.cpp):
// string / number / boolean values, no nesting. Journal records are flat
// by construction.
struct JsonScanner {
  const std::string& s;
  std::size_t i = 0;
  std::string error;

  explicit JsonScanner(const std::string& text) : s(text) {}

  bool fail(const std::string& why) {
    error = why + " at offset " + std::to_string(i);
    return false;
  }
  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool expect(char c) {
    skip_ws();
    if (i >= s.size() || s[i] != c) return fail(std::string("expected '") + c + "'");
    ++i;
    return true;
  }
  bool parse_string(std::string& out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\') {
        if (i >= s.size()) return fail("bad escape");
        char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: return fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;
    return true;
  }
  bool parse_value(std::string& out, bool& is_string) {
    skip_ws();
    if (i >= s.size()) return fail("expected value");
    if (s[i] == '"') {
      is_string = true;
      return parse_string(out);
    }
    is_string = false;
    std::size_t start = i;
    while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                            s[i] == '-' || s[i] == '+' || s[i] == '.')) {
      ++i;
    }
    if (i == start) return fail("expected value");
    out = s.substr(start, i - start);
    return true;
  }
};

struct Field {
  std::string value;
  bool is_string = false;
  bool present = false;
};

// Parses one record line into its key/value fields. Flat objects only;
// duplicate keys rejected.
bool parse_record(const std::string& line,
                  std::unordered_map<std::string, Field>& fields, std::string* error) {
  JsonScanner sc(line);
  fields.clear();
  if (!sc.expect('{')) { *error = sc.error; return false; }
  bool first = true;
  for (;;) {
    sc.skip_ws();
    if (sc.i < sc.s.size() && sc.s[sc.i] == '}') {
      ++sc.i;
      break;
    }
    if (!first && !sc.expect(',')) { *error = sc.error; return false; }
    first = false;
    std::string key;
    Field f;
    if (!sc.parse_string(key)) { *error = sc.error; return false; }
    if (!sc.expect(':')) { *error = sc.error; return false; }
    if (!sc.parse_value(f.value, f.is_string)) { *error = sc.error; return false; }
    f.present = true;
    if (!fields.emplace(std::move(key), std::move(f)).second) {
      *error = "duplicate key";
      return false;
    }
  }
  sc.skip_ws();
  if (sc.i != sc.s.size()) { *error = "trailing characters after object"; return false; }
  return true;
}

bool parse_int(const std::string& text, long& out) {
  char* end = nullptr;
  out = std::strtol(text.c_str(), &end, 10);
  return end && *end == '\0';
}

JobState state_from_name(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "done") return JobState::Done;
  if (name == "violations") return JobState::Violations;
  if (name == "input-error") return JobState::InputError;
  if (name == "degraded") return JobState::Degraded;
  if (name == "crashed") return JobState::Crashed;
  if (name == "resource-exhausted") return JobState::ResourceExhausted;
  if (name == "shed") return JobState::Shed;
  if (name == "quarantined") return JobState::Quarantined;
  if (name == "requeued") return JobState::Requeued;
  *ok = false;
  return JobState::Requeued;
}

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string header_line(const std::vector<JobSpec>& jobs, std::uint64_t seed,
                        int max_attempts, const BatchPolicy& policy) {
  std::string line = "{\"journal\": \"scaldtvd\", \"version\": ";
  line += std::to_string(kJournalVersion);
  line += ", \"jobs\": " + std::to_string(jobs.size());
  line += ", \"jobs_digest\": ";
  append_escaped(line, hex64(jobs_digest(jobs)));
  line += ", \"seed\": " + std::to_string(seed);
  line += ", \"max_attempts\": " + std::to_string(max_attempts);
  line += ", \"mem_limit_mb\": " + std::to_string(policy.mem_limit_mb);
  line += ", \"mem_retry\": " + std::to_string(policy.mem_retry ? 1 : 0);
  line += ", \"max_queue\": " + std::to_string(policy.max_queue);
  line += ", \"quarantine_after\": " + std::to_string(policy.quarantine_after);
  line += "}\n";
  return line;
}

}  // namespace

std::uint64_t jobs_digest(const std::vector<JobSpec>& jobs) {
  std::uint64_t h = 14695981039346656037ull;
  std::uint64_t n = jobs.size();
  h = fnv1a(&n, sizeof n, h);
  for (const JobSpec& j : jobs) {
    h = fnv1a_str(j.id, h);
    h = fnv1a_str(j.design, h);
    unsigned char flags = static_cast<unsigned char>((j.compiled ? 1 : 0) |
                                                     (j.stdlib ? 2 : 0));
    h = fnv1a(&flags, sizeof flags, h);
    h = fnv1a(&j.time_limit, sizeof j.time_limit, h);
    h = fnv1a(&j.jobs, sizeof j.jobs, h);
    h = fnv1a_str(j.reverify, h);
    h = fnv1a_str(j.fault, h);
    h = fnv1a(&j.fault_attempts, sizeof j.fault_attempts, h);
  }
  return h;
}

Journal::~Journal() {
  if (fd_ >= 0) close(fd_);
}

std::unique_ptr<Journal> Journal::create(const std::string& path,
                                         const std::vector<JobSpec>& jobs,
                                         std::uint64_t seed, int max_attempts,
                                         const BatchPolicy& policy,
                                         std::string* error) {
  int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error) *error = path + ": " + std::strerror(errno);
    return nullptr;
  }
  std::unique_ptr<Journal> j(new Journal(fd));
  j->append(header_line(jobs, seed, max_attempts, policy));
  if (!j->ok()) {
    if (error) *error = j->error();
    return nullptr;
  }
  return j;
}

std::unique_ptr<Journal> Journal::reopen(const std::string& path, std::string* error) {
  int fd = open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    if (error) *error = path + ": " + std::strerror(errno);
    return nullptr;
  }
  return std::unique_ptr<Journal>(new Journal(fd));
}

void Journal::append(const std::string& line) {
  if (!ok_) return;
  // Disk-pressure injection point: a planned io.write fault here behaves
  // like ENOSPC on the journal device -- the record never lands (not even
  // partially), the failure latches, and the daemon must wind down loudly
  // with the on-disk journal still a clean resumable prefix.
  if (fault::should_fail("io.write")) {
    ok_ = false;
    error_ = "journal append failed: injected io.write fault (ENOSPC)";
    return;
  }
  if (!write_all(fd_, line.data(), line.size()) || fsync(fd_) != 0) {
    ok_ = false;
    error_ = std::string("journal append failed: ") + std::strerror(errno);
  }
}

void Journal::record_launch(const std::string& job_id, int attempt) {
  std::string line = "{\"job\": ";
  append_escaped(line, job_id);
  line += ", \"attempt\": " + std::to_string(attempt);
  line += ", \"event\": \"launch\"}\n";
  append(line);
}

void Journal::record_outcome(const std::string& job_id, int attempt,
                             const std::string& outcome) {
  std::string line = "{\"job\": ";
  append_escaped(line, job_id);
  line += ", \"attempt\": " + std::to_string(attempt);
  line += ", \"event\": \"outcome\", \"outcome\": ";
  append_escaped(line, outcome);
  line += "}\n";
  append(line);
}

void Journal::record_settle(const std::string& job_id, JobState state) {
  std::string line = "{\"job\": ";
  append_escaped(line, job_id);
  line += ", \"event\": \"settle\", \"state\": \"";
  line += job_state_name(state);
  line += "\"}\n";
  append(line);
}

void Journal::record_quarantine(const std::string& key_hex) {
  std::string line = "{\"event\": \"quarantine\", \"key\": ";
  append_escaped(line, key_hex);
  line += "}\n";
  append(line);
}

bool derive_settlement(const std::vector<std::string>& outcomes, int max_attempts,
                       bool mem_retry, JobState* out) {
  // Mirrors the live reap path exactly (serve/supervisor.cpp): exits 0/1/3
  // are verdicts, exit 5 / signals / timeouts / spawn failures are
  // transient (retried), a mem-limit breach is terminal ResourceExhausted
  // (immediately, or after max_attempts under --mem-retry), everything
  // else is a permanent input error.
  for (const std::string& o : outcomes) {
    if (o.rfind("exit:", 0) == 0) {
      long code = 0;
      if (!parse_int(o.substr(5), code)) code = 127;
      switch (code) {
        case 0: *out = JobState::Done; return true;
        case 1: *out = JobState::Violations; return true;
        case 3: *out = JobState::Degraded; return true;
        case 5: break;  // transient
        default: *out = JobState::InputError; return true;
      }
    } else if (o == "mem-limit" && !mem_retry) {
      *out = JobState::ResourceExhausted;
      return true;
    }
    // "signal:N", "timeout", "spawn-failed" (and "mem-limit" under
    // --mem-retry): transient, keep walking.
  }
  if (static_cast<int>(outcomes.size()) >= max_attempts) {
    *out = (!outcomes.empty() && outcomes.back() == "mem-limit")
               ? JobState::ResourceExhausted
               : JobState::Crashed;
    return true;
  }
  return false;
}

std::optional<JournalReplay> replay_journal(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<JournalReplay> {
    if (error) *error = path + ": " + why;
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open");
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  JournalReplay replay;
  bool saw_header = false;
  std::size_t lineno = 0;
  std::size_t from = 0;
  while (from < text.size()) {
    std::size_t nl = text.find('\n', from);
    bool torn = nl == std::string::npos;  // no newline: crash tore this line
    std::string line = text.substr(from, torn ? std::string::npos : nl - from);
    from = torn ? text.size() : nl + 1;
    ++lineno;
    if (line.empty()) continue;

    std::unordered_map<std::string, Field> f;
    std::string perror;
    if (!parse_record(line, f, &perror)) {
      if (torn) break;  // a torn final record is the expected crash artifact
      return fail("line " + std::to_string(lineno) + ": " + perror);
    }
    if (torn) {
      // Parsed, but unterminated: still a torn write (the record is only
      // durable once its newline hit the disk). Drop it -- the attempt it
      // described will simply re-run.
      break;
    }

    auto str_field = [&](const char* key) -> const Field* {
      auto it = f.find(key);
      return (it != f.end() && it->second.is_string) ? &it->second : nullptr;
    };
    auto num_field = [&](const char* key, long& out) {
      auto it = f.find(key);
      return it != f.end() && !it->second.is_string && parse_int(it->second.value, out);
    };

    if (!saw_header) {
      const Field* kind = str_field("journal");
      if (!kind || kind->value != "scaldtvd") return fail("not a scaldtvd journal");
      long version = 0, njobs = 0, seed = 0, max_attempts = 0;
      const Field* digest = str_field("jobs_digest");
      if (!num_field("version", version) || !num_field("jobs", njobs) ||
          !num_field("seed", seed) || !num_field("max_attempts", max_attempts) ||
          !digest || njobs < 0 || seed < 0 || max_attempts < 1 ||
          !parse_hex64(digest->value, replay.digest)) {
        return fail("malformed journal header");
      }
      if (version != kJournalVersion) {
        return fail("journal version " + std::to_string(version) +
                    " (this build reads version " + std::to_string(kJournalVersion) + ")");
      }
      long mem_limit_mb = 0, mem_retry = 0, max_queue = 0, quarantine_after = 0;
      if (!num_field("mem_limit_mb", mem_limit_mb) ||
          !num_field("mem_retry", mem_retry) ||
          !num_field("max_queue", max_queue) ||
          !num_field("quarantine_after", quarantine_after) ||
          mem_limit_mb < 0 || (mem_retry != 0 && mem_retry != 1) ||
          max_queue < 0 || quarantine_after < 0) {
        return fail("malformed journal header (overload policy)");
      }
      replay.version = static_cast<std::uint32_t>(version);
      replay.num_jobs = static_cast<std::size_t>(njobs);
      replay.seed = static_cast<std::uint64_t>(seed);
      replay.max_attempts = static_cast<int>(max_attempts);
      replay.policy.mem_limit_mb = mem_limit_mb;
      replay.policy.mem_retry = mem_retry == 1;
      replay.policy.max_queue = max_queue;
      replay.policy.quarantine_after = static_cast<int>(quarantine_after);
      saw_header = true;
      continue;
    }

    const Field* event = str_field("event");
    if (event && event->value == "quarantine") {
      const Field* key = str_field("key");
      if (!key) return fail("line " + std::to_string(lineno) + ": quarantine without key");
      replay.quarantined_keys.push_back(key->value);
      continue;
    }

    const Field* job = str_field("job");
    if (!job || !event) {
      return fail("line " + std::to_string(lineno) + ": record without job/event");
    }
    ReplayedJob& rj = replay.jobs[job->value];
    if (event->value == "launch") {
      long attempt = 0;
      if (!num_field("attempt", attempt) ||
          attempt != static_cast<long>(rj.outcomes.size()) + 1) {
        // A relaunch of the same attempt after an earlier kill is legal
        // (same number); a gap or regression is not.
        return fail("line " + std::to_string(lineno) + ": launch attempt " +
                    std::to_string(attempt) + " out of order for job \"" +
                    job->value + "\"");
      }
    } else if (event->value == "outcome") {
      long attempt = 0;
      const Field* outcome = str_field("outcome");
      if (!outcome || !num_field("attempt", attempt) ||
          attempt != static_cast<long>(rj.outcomes.size()) + 1) {
        return fail("line " + std::to_string(lineno) + ": outcome out of order for job \"" +
                    job->value + "\"");
      }
      rj.outcomes.push_back(outcome->value);
    } else if (event->value == "settle") {
      const Field* state = str_field("state");
      bool ok = false;
      JobState st = state ? state_from_name(state->value, &ok) : JobState::Requeued;
      if (!ok) {
        return fail("line " + std::to_string(lineno) + ": unknown settle state");
      }
      rj.settled = true;
      rj.state = st;
    } else {
      return fail("line " + std::to_string(lineno) + ": unknown event \"" +
                  event->value + "\"");
    }
  }
  if (!saw_header) return fail("missing journal header");
  return replay;
}

}  // namespace tv::serve
