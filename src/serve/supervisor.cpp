#include "serve/supervisor.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "serve/journal.hpp"
#include "serve/warm_pool.hpp"
#include "util/fault.hpp"

namespace tv::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Per-job bookkeeping while the batch runs.
struct Slot {
  enum class Phase { Pending, Delayed, Running, Terminal };
  const JobSpec* job = nullptr;
  Phase phase = Phase::Pending;
  JobRecord record;
  pid_t pid = -1;
  Clock::time_point kill_at{};   // watchdog (Running, when armed)
  bool watchdog = false;
  bool killed_by_watchdog = false;
  Clock::time_point retry_at{};  // backoff wake-up (Delayed)
};

pid_t spawn_worker(const JobSpec& job, const SupervisorOptions& opts, int attempt) {
  std::vector<std::string> args = worker_args(job);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(opts.scaldtv_path.c_str()));
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const std::string* spec = effective_fault_spec(job, opts, attempt);

  pid_t pid = fork();
  if (pid != 0) return pid;  // parent (or fork failure, -1)

  // Child: only async-signal-safe calls plus exec. Workers write their
  // reports to /dev/null -- the manifest is the daemon's output; worker
  // stderr is passed through so crash reports and diagnostics stay visible.
  int devnull = open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    dup2(devnull, STDOUT_FILENO);
    if (devnull > STDERR_FILENO) close(devnull);
  }
  if (spec) {
    setenv("TV_FAULT", spec->c_str(), 1);
  } else {
    unsetenv("TV_FAULT");
  }
  execvp(opts.scaldtv_path.c_str(), argv.data());
  _exit(127);
}

class ForkExecBackend : public WorkerBackend {
 public:
  explicit ForkExecBackend(const SupervisorOptions& opts) : opts_(opts) {}

  pid_t launch(const JobSpec& job, int attempt) override {
    return spawn_worker(job, opts_, attempt);
  }

  WorkerPoll poll(pid_t pid) override {
    WorkerPoll p;
    int status = 0;
    pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      if (WIFSIGNALED(status)) {
        p.kind = WorkerPoll::Kind::Signaled;
        p.value = WTERMSIG(status);
      } else {
        p.kind = WorkerPoll::Kind::Exited;
        p.value = WIFEXITED(status) ? WEXITSTATUS(status) : 127;
      }
    } else if (r < 0 && errno == ECHILD) {
      // Should not happen (we only wait on our own pids), but do not spin
      // on a lost child forever: treat it like a SIGKILLed worker.
      p.kind = WorkerPoll::Kind::Signaled;
      p.value = SIGKILL;
    }
    return p;
  }

  void kill_worker(pid_t pid) override { kill(pid, SIGKILL); }

 private:
  const SupervisorOptions& opts_;
};

}  // namespace

const std::string* effective_fault_spec(const JobSpec& job,
                                        const SupervisorOptions& opts,
                                        int attempt) {
  // The injected spec for this attempt: the job's own fault wins (gated on
  // fault_attempts so "attempt 1 dies, attempt 2 runs clean" is expressible),
  // else the daemon-wide chaos spec. Null otherwise so workers never inherit
  // the daemon's fault plan by accident.
  if (!job.fault.empty() &&
      (job.fault_attempts == 0 || attempt <= job.fault_attempts)) {
    return &job.fault;
  }
  if (!opts.fault_spec.empty()) return &opts.fault_spec;
  return nullptr;
}

std::uint64_t backoff_delay_ms(const SupervisorOptions& opts,
                               const std::string& job_id, int attempt) {
  std::uint64_t delay = opts.backoff_base_ms;
  for (int i = 1; i < attempt && delay < opts.backoff_max_ms; ++i) {
    // Overflow-safe doubling: once delay passes max/2 the next double would
    // exceed (or wrap past) the cap, so saturate at the cap directly.
    if (delay > opts.backoff_max_ms / 2) {
      delay = opts.backoff_max_ms;
      break;
    }
    delay *= 2;
  }
  if (delay > opts.backoff_max_ms) delay = opts.backoff_max_ms;
  std::uint64_t h = fnv1a(job_id.data(), job_id.size(), 14695981039346656037ull);
  h = fnv1a(&attempt, sizeof attempt, h);
  h = fnv1a(&opts.jitter_seed, sizeof opts.jitter_seed, h);
  std::uint64_t jitter = opts.backoff_base_ms ? h % opts.backoff_base_ms : 0;
  // backoff_max_ms caps the *total* delay: jitter fills the gap below the
  // cap but never pushes past it.
  if (delay + jitter < delay || delay + jitter > opts.backoff_max_ms) {
    return opts.backoff_max_ms;
  }
  return delay + jitter;
}

std::unique_ptr<WorkerBackend> make_fork_exec_backend(const SupervisorOptions& opts) {
  return std::make_unique<ForkExecBackend>(opts);
}

Manifest run_jobs(const std::vector<JobSpec>& jobs, const SupervisorOptions& opts,
                  WorkerBackend& backend) {
  std::vector<Slot> slots(jobs.size());
  std::size_t open_jobs = jobs.size();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    slots[i].job = &jobs[i];
    slots[i].record.id = jobs[i].id;
    slots[i].record.design = jobs[i].design;
    if (opts.resume) {
      // Resume: re-seed this slot from the replayed journal. Settlement is
      // re-derived from the outcome list with the same classification the
      // reap path below applies, so a job whose attempts already finished
      // lands in the manifest exactly as the uninterrupted run would have
      // put it -- without relaunching anything.
      auto it = opts.resume->jobs.find(jobs[i].id);
      if (it != opts.resume->jobs.end()) {
        slots[i].record.outcomes = it->second.outcomes;
        slots[i].record.attempts = static_cast<int>(it->second.outcomes.size());
        JobState settled;
        if (derive_settlement(slots[i].record.outcomes, opts.max_attempts, &settled)) {
          slots[i].phase = Slot::Phase::Terminal;
          slots[i].record.state = settled;
          --open_jobs;
          if (opts.verbose) {
            std::fprintf(stderr, "scaldtvd: job %s -> %s (replayed from journal)\n",
                         jobs[i].id.c_str(), job_state_name(settled));
          }
        }
      }
    }
  }

  unsigned running = 0;
  bool draining = false;

  // The seeded kill point for the kill/restart chaos tests: armed with
  // kill9, the daemon dies right after a journal append -- the exact
  // boundary the write-ahead discipline must make safe.
  auto chaos_point = [&] {
    if (opts.journal) (void)fault::should_fail("serve.kill9");
  };

  auto shutting_down = [&] { return opts.shutdown && *opts.shutdown != 0; };

  auto note = [&](const Slot& s, const char* what) {
    if (opts.verbose) {
      std::fprintf(stderr, "scaldtvd: job %s attempt %d: %s\n",
                   s.record.id.c_str(), s.record.attempts, what);
    }
  };

  auto settle = [&](Slot& s, JobState state) {
    s.phase = Slot::Phase::Terminal;
    s.record.state = state;
    --open_jobs;
    // Requeued is not terminal from the journal's point of view: a drained
    // job re-enters the queue on --resume, so journaling it as settled
    // would freeze the shutdown into the batch's durable state.
    if (opts.journal && state != JobState::Requeued) {
      opts.journal->record_settle(s.record.id, state);
      chaos_point();
    }
    if (opts.verbose) {
      std::fprintf(stderr, "scaldtvd: job %s -> %s after %d attempt(s)\n",
                   s.record.id.c_str(), job_state_name(state), s.record.attempts);
    }
  };

  // A failed attempt either backs off for a retry or, with attempts
  // exhausted, settles the job as Crashed. Under drain there is no retry to
  // back off for: the job goes back to the queue as Requeued -- an attempt
  // the shutdown interrupted is the drain's fault, not the job's, so it
  // must not tip the job into Crashed.
  auto handle_transient = [&](Slot& s) {
    if (draining) {
      settle(s, JobState::Requeued);
      return;
    }
    if (s.record.attempts >= opts.max_attempts) {
      settle(s, JobState::Crashed);
      return;
    }
    std::uint64_t delay = backoff_delay_ms(opts, s.record.id, s.record.attempts);
    s.phase = Slot::Phase::Delayed;
    s.retry_at = Clock::now() + std::chrono::milliseconds(delay);
  };

  // Appends the just-recorded outcome (record.outcomes.back()) to the
  // journal. Called at every point an attempt's result becomes known.
  auto journal_outcome = [&](Slot& s) {
    if (opts.journal) {
      opts.journal->record_outcome(s.record.id, s.record.attempts,
                                   s.record.outcomes.back());
      chaos_point();
    }
  };

  auto launch = [&](Slot& s) {
    ++s.record.attempts;
    // Write-ahead: the intent to launch is durable before any process
    // exists, so a daemon killed mid-launch re-runs the same attempt
    // number on resume instead of silently skipping it.
    if (opts.journal) {
      opts.journal->record_launch(s.record.id, s.record.attempts);
      chaos_point();
    }
    if (fault::should_fail("serve.spawn")) {
      s.record.outcomes.push_back("spawn-failed");
      journal_outcome(s);
      note(s, "injected spawn failure");
      handle_transient(s);
      return;
    }
    pid_t pid = backend.launch(*s.job, s.record.attempts);
    if (pid < 0) {
      s.record.outcomes.push_back("spawn-failed");
      journal_outcome(s);
      note(s, "fork failed");
      handle_transient(s);
      return;
    }
    s.phase = Slot::Phase::Running;
    s.pid = pid;
    s.killed_by_watchdog = false;
    double timeout = s.job->time_limit > 0
                         ? s.job->time_limit + opts.watchdog_slack
                         : opts.default_timeout;
    s.watchdog = timeout > 0;
    if (s.watchdog) {
      s.kill_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(timeout));
    }
    ++running;
    note(s, "launched");
  };

  auto reap = [&](Slot& s, const WorkerPoll& p) {
    s.pid = -1;
    --running;
    if (p.kind == WorkerPoll::Kind::Signaled) {
      if (s.killed_by_watchdog) {
        s.record.outcomes.push_back("timeout");
        journal_outcome(s);
        note(s, "watchdog timeout");
      } else {
        s.record.outcomes.push_back("signal:" + std::to_string(p.value));
        journal_outcome(s);
        note(s, "died by signal");
      }
      handle_transient(s);
      return;
    }
    int code = p.value;
    s.record.outcomes.push_back("exit:" + std::to_string(code));
    journal_outcome(s);
    switch (code) {
      case 0: settle(s, JobState::Done); return;
      case 1: settle(s, JobState::Violations); return;
      case 3: settle(s, JobState::Degraded); return;
      case 5:
        note(s, "transient failure");
        handle_transient(s);
        return;
      // 2 (input error) and 127 (exec failure: bad scaldtv path) are
      // permanent -- retrying cannot fix a bad design or a missing binary.
      default: settle(s, JobState::InputError); return;
    }
  };

  // Adaptive poll cadence: a fixed sleep per iteration caps throughput at
  // workers / sleep regardless of how fast jobs actually finish (with warm
  // workers a job can complete in under a millisecond). After a productive
  // iteration -- a reap or a launch -- poll again immediately; only when
  // nothing moves does the sleep escalate back to the 10 ms idle cadence.
  unsigned idle_ms = 0;
  while (open_jobs > 0) {
    if (shutting_down() && !draining) {
      draining = true;
      if (opts.verbose) {
        std::fprintf(stderr, "scaldtvd: shutdown requested; draining %u running "
                             "worker(s), requeueing the rest\n", running);
      }
    }
    Clock::time_point now = Clock::now();
    std::size_t settled_before = open_jobs;
    unsigned launched_before = running;

    for (Slot& s : slots) {
      switch (s.phase) {
        case Slot::Phase::Running: {
          WorkerPoll p = backend.poll(s.pid);
          if (p.kind != WorkerPoll::Kind::Running) {
            reap(s, p);
          } else if (s.watchdog && !s.killed_by_watchdog && now >= s.kill_at) {
            s.killed_by_watchdog = true;
            backend.kill_worker(s.pid);
          }
          break;
        }
        case Slot::Phase::Delayed:
          if (draining) {
            settle(s, JobState::Requeued);
          } else if (now >= s.retry_at && running < opts.workers) {
            launch(s);
          }
          break;
        case Slot::Phase::Pending:
          if (draining) {
            settle(s, JobState::Requeued);
          } else if (running < opts.workers) {
            launch(s);
          }
          break;
        case Slot::Phase::Terminal:
          break;
      }
      if (open_jobs == 0) break;
    }

    bool progressed = open_jobs < settled_before || running != launched_before;
    if (progressed) {
      idle_ms = 0;
    } else if (open_jobs > 0) {
      idle_ms = idle_ms == 0 ? 1 : std::min(idle_ms * 2, 10u);
      std::this_thread::sleep_for(std::chrono::milliseconds(idle_ms));
    }
  }

  Manifest m;
  m.jobs.reserve(slots.size());
  for (Slot& s : slots) m.jobs.push_back(std::move(s.record));
  m.evictions = backend.evictions();
  return m;
}

Manifest run_jobs(const std::vector<JobSpec>& jobs, const SupervisorOptions& opts) {
  std::unique_ptr<WorkerBackend> backend =
      opts.warm ? make_warm_pool_backend(opts) : make_fork_exec_backend(opts);
  return run_jobs(jobs, opts, *backend);
}

}  // namespace tv::serve
