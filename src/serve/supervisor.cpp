#include "serve/supervisor.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "util/fault.hpp"

namespace tv::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Per-job bookkeeping while the batch runs.
struct Slot {
  enum class Phase { Pending, Delayed, Running, Terminal };
  const JobSpec* job = nullptr;
  Phase phase = Phase::Pending;
  JobRecord record;
  pid_t pid = -1;
  Clock::time_point kill_at{};   // watchdog (Running, when armed)
  bool watchdog = false;
  bool killed_by_watchdog = false;
  Clock::time_point retry_at{};  // backoff wake-up (Delayed)
};

/// Classification of one finished attempt.
enum class Outcome { Terminal, Transient };

pid_t spawn_worker(const JobSpec& job, const SupervisorOptions& opts, int attempt) {
  std::vector<std::string> args = worker_args(job);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(opts.scaldtv_path.c_str()));
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  // The injected spec for this attempt: the job's own fault wins (gated on
  // fault_attempts so "attempt 1 dies, attempt 2 runs clean" is expressible),
  // else the daemon-wide chaos spec. Cleared otherwise so workers never
  // inherit the daemon's TV_FAULT by accident.
  const std::string* spec = nullptr;
  if (!job.fault.empty() &&
      (job.fault_attempts == 0 || attempt <= job.fault_attempts)) {
    spec = &job.fault;
  } else if (!opts.fault_spec.empty()) {
    spec = &opts.fault_spec;
  }

  pid_t pid = fork();
  if (pid != 0) return pid;  // parent (or fork failure, -1)

  // Child: only async-signal-safe calls plus exec. Workers write their
  // reports to /dev/null -- the manifest is the daemon's output; worker
  // stderr is passed through so crash reports and diagnostics stay visible.
  int devnull = open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    dup2(devnull, STDOUT_FILENO);
    if (devnull > STDERR_FILENO) close(devnull);
  }
  if (spec) {
    setenv("TV_FAULT", spec->c_str(), 1);
  } else {
    unsetenv("TV_FAULT");
  }
  execvp(opts.scaldtv_path.c_str(), argv.data());
  _exit(127);
}

}  // namespace

std::uint64_t backoff_delay_ms(const SupervisorOptions& opts,
                               const std::string& job_id, int attempt) {
  std::uint64_t delay = opts.backoff_base_ms;
  for (int i = 1; i < attempt && delay < opts.backoff_max_ms; ++i) delay *= 2;
  if (delay > opts.backoff_max_ms) delay = opts.backoff_max_ms;
  std::uint64_t h = fnv1a(job_id.data(), job_id.size(), 14695981039346656037ull);
  h = fnv1a(&attempt, sizeof attempt, h);
  h = fnv1a(&opts.jitter_seed, sizeof opts.jitter_seed, h);
  std::uint64_t jitter = opts.backoff_base_ms ? h % opts.backoff_base_ms : 0;
  return delay + jitter;
}

Manifest run_jobs(const std::vector<JobSpec>& jobs, const SupervisorOptions& opts) {
  std::vector<Slot> slots(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    slots[i].job = &jobs[i];
    slots[i].record.id = jobs[i].id;
    slots[i].record.design = jobs[i].design;
  }

  std::unordered_map<pid_t, std::size_t> by_pid;
  unsigned running = 0;
  std::size_t open_jobs = jobs.size();
  bool draining = false;

  auto shutting_down = [&] { return opts.shutdown && *opts.shutdown != 0; };

  auto note = [&](const Slot& s, const char* what) {
    if (opts.verbose) {
      std::fprintf(stderr, "scaldtvd: job %s attempt %d: %s\n",
                   s.record.id.c_str(), s.record.attempts, what);
    }
  };

  auto settle = [&](Slot& s, JobState state) {
    s.phase = Slot::Phase::Terminal;
    s.record.state = state;
    --open_jobs;
    if (opts.verbose) {
      std::fprintf(stderr, "scaldtvd: job %s -> %s after %d attempt(s)\n",
                   s.record.id.c_str(), job_state_name(state), s.record.attempts);
    }
  };

  // A failed attempt either backs off for a retry or, with attempts
  // exhausted, settles the job as Crashed.
  auto handle_transient = [&](Slot& s) {
    if (s.record.attempts >= opts.max_attempts) {
      settle(s, JobState::Crashed);
      return;
    }
    std::uint64_t delay = backoff_delay_ms(opts, s.record.id, s.record.attempts);
    s.phase = Slot::Phase::Delayed;
    s.retry_at = Clock::now() + std::chrono::milliseconds(delay);
  };

  auto launch = [&](Slot& s) {
    ++s.record.attempts;
    if (fault::should_fail("serve.spawn")) {
      s.record.outcomes.push_back("spawn-failed");
      note(s, "injected spawn failure");
      handle_transient(s);
      return;
    }
    pid_t pid = spawn_worker(*s.job, opts, s.record.attempts);
    if (pid < 0) {
      s.record.outcomes.push_back("spawn-failed");
      note(s, "fork failed");
      handle_transient(s);
      return;
    }
    s.phase = Slot::Phase::Running;
    s.pid = pid;
    s.killed_by_watchdog = false;
    double timeout = s.job->time_limit > 0
                         ? s.job->time_limit + opts.watchdog_slack
                         : opts.default_timeout;
    s.watchdog = timeout > 0;
    if (s.watchdog) {
      s.kill_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(timeout));
    }
    by_pid[pid] = static_cast<std::size_t>(s.job - jobs.data());
    ++running;
    note(s, "launched");
  };

  auto reap = [&](Slot& s, int status) {
    by_pid.erase(s.pid);
    s.pid = -1;
    --running;
    if (WIFSIGNALED(status)) {
      if (s.killed_by_watchdog) {
        s.record.outcomes.push_back("timeout");
        note(s, "watchdog timeout");
      } else {
        s.record.outcomes.push_back("signal:" + std::to_string(WTERMSIG(status)));
        note(s, "died by signal");
      }
      handle_transient(s);
      return;
    }
    int code = WIFEXITED(status) ? WEXITSTATUS(status) : 127;
    s.record.outcomes.push_back("exit:" + std::to_string(code));
    switch (code) {
      case 0: settle(s, JobState::Done); return;
      case 1: settle(s, JobState::Violations); return;
      case 3: settle(s, JobState::Degraded); return;
      case 5:
        note(s, "transient failure");
        handle_transient(s);
        return;
      // 2 (input error) and 127 (exec failure: bad scaldtv path) are
      // permanent -- retrying cannot fix a bad design or a missing binary.
      default: settle(s, JobState::InputError); return;
    }
  };

  while (open_jobs > 0) {
    if (shutting_down() && !draining) {
      draining = true;
      if (opts.verbose) {
        std::fprintf(stderr, "scaldtvd: shutdown requested; draining %u running "
                             "worker(s), requeueing the rest\n", running);
      }
    }
    Clock::time_point now = Clock::now();

    for (Slot& s : slots) {
      switch (s.phase) {
        case Slot::Phase::Running: {
          int status = 0;
          pid_t r = waitpid(s.pid, &status, WNOHANG);
          if (r == s.pid) {
            reap(s, status);
          } else if (r < 0 && errno == ECHILD) {
            // Should not happen (we only wait on our own pids), but do not
            // spin on a lost child forever.
            s.record.outcomes.push_back("signal:9");
            by_pid.erase(s.pid);
            s.pid = -1;
            --running;
            handle_transient(s);
          } else if (s.watchdog && !s.killed_by_watchdog && now >= s.kill_at) {
            s.killed_by_watchdog = true;
            kill(s.pid, SIGKILL);
          }
          break;
        }
        case Slot::Phase::Delayed:
          if (draining) {
            settle(s, JobState::Requeued);
          } else if (now >= s.retry_at && running < opts.workers) {
            launch(s);
          }
          break;
        case Slot::Phase::Pending:
          if (draining) {
            settle(s, JobState::Requeued);
          } else if (running < opts.workers) {
            launch(s);
          }
          break;
        case Slot::Phase::Terminal:
          break;
      }
      if (open_jobs == 0) break;
    }

    if (open_jobs > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  Manifest m;
  m.jobs.reserve(slots.size());
  for (Slot& s : slots) m.jobs.push_back(std::move(s.record));
  return m;
}

}  // namespace tv::serve
