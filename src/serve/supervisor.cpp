#include "serve/supervisor.hpp"

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "serve/journal.hpp"
#include "serve/warm_pool.hpp"
#include "util/fault.hpp"

// The setrlimit backstop is compiled out under ASan: its shadow mappings
// count toward RLIMIT_DATA on modern kernels and would kill every worker
// at startup. The supervisor-side statm watchdog stays on either way.
#if defined(__SANITIZE_ADDRESS__)
#define TV_ASAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TV_ASAN_BUILD 1
#endif
#endif

namespace tv::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Per-job bookkeeping while the batch runs.
struct Slot {
  enum class Phase { Pending, Delayed, Running, Terminal };
  const JobSpec* job = nullptr;
  Phase phase = Phase::Pending;
  JobRecord record;
  pid_t pid = -1;
  Clock::time_point kill_at{};   // watchdog (Running, when armed)
  bool watchdog = false;
  bool killed_by_watchdog = false;
  bool killed_by_memlimit = false;
  Clock::time_point retry_at{};  // backoff wake-up (Delayed)
};

// The poison-design breaker for one design key. `tripped` is sticky for
// the life of the batch (and, via the journal ledger, across resumes).
struct Breaker {
  int consec = 0;
  bool tripped = false;
};

// Design key for the quarantine breaker: FNV-1a over the design file's
// *content* (so two paths to the same bytes share one breaker, and a fixed
// design re-enters service under a new key) plus the front-end mode flags.
// Unreadable designs fall back to hashing the path -- they will fail as
// InputError anyway, and the key only has to be deterministic.
std::string quarantine_key(const JobSpec& job) {
  std::uint64_t h = 14695981039346656037ull;
  std::ifstream in(job.design, std::ios::binary);
  if (in) {
    char buf[1 << 16];
    while (in.read(buf, sizeof buf) || in.gcount() > 0) {
      h = fnv1a(buf, static_cast<std::size_t>(in.gcount()), h);
      if (!in) break;
    }
  } else {
    h = fnv1a(job.design.data(), job.design.size(), h);
  }
  unsigned char flags = static_cast<unsigned char>((job.compiled ? 1 : 0) |
                                                   (job.stdlib ? 2 : 0));
  h = fnv1a(&flags, sizeof flags, h);
  char out[17];
  std::snprintf(out, sizeof out, "%016llx", static_cast<unsigned long long>(h));
  return out;
}

pid_t spawn_worker(const JobSpec& job, const SupervisorOptions& opts, int attempt) {
  std::vector<std::string> args = worker_args(job);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(opts.scaldtv_path.c_str()));
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const std::string* spec = effective_fault_spec(job, opts, attempt);

  pid_t pid = fork();
  if (pid != 0) return pid;  // parent (or fork failure, -1)

  // Child: only async-signal-safe calls plus exec. Workers write their
  // reports to /dev/null -- the manifest is the daemon's output; worker
  // stderr is passed through so crash reports and diagnostics stay visible.
  int devnull = open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    dup2(devnull, STDOUT_FILENO);
    if (devnull > STDERR_FILENO) close(devnull);
  }
  if (spec) {
    setenv("TV_FAULT", spec->c_str(), 1);
  } else {
    unsetenv("TV_FAULT");
  }
#if !defined(TV_ASAN_BUILD)
  if (opts.mem_limit_mb > 0) {
    // Kernel-side backstop under the statm watchdog. RLIMIT_DATA counts
    // reserved virtual memory, not resident pages, and glibc's malloc
    // arenas over-reserve by design -- so the hard limit gets generous
    // headroom (4x the budget + 256 MiB) and exists only to stop a worker
    // that outruns the watchdog's sampling cadence, not to be the primary
    // enforcement. The watchdog's kill is what classifies the breach.
    struct rlimit rl;
    rl.rlim_cur = rl.rlim_max =
        static_cast<rlim_t>(opts.mem_limit_mb) * (1u << 20) * 4 +
        (static_cast<rlim_t>(256) << 20);
    setrlimit(RLIMIT_DATA, &rl);
  }
#endif
  execvp(opts.scaldtv_path.c_str(), argv.data());
  _exit(127);
}

class ForkExecBackend : public WorkerBackend {
 public:
  explicit ForkExecBackend(const SupervisorOptions& opts) : opts_(opts) {}

  pid_t launch(const JobSpec& job, int attempt) override {
    return spawn_worker(job, opts_, attempt);
  }

  WorkerPoll poll(pid_t pid) override {
    WorkerPoll p;
    int status = 0;
    pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      if (WIFSIGNALED(status)) {
        p.kind = WorkerPoll::Kind::Signaled;
        p.value = WTERMSIG(status);
      } else {
        p.kind = WorkerPoll::Kind::Exited;
        p.value = WIFEXITED(status) ? WEXITSTATUS(status) : 127;
      }
    } else if (r < 0 && errno == ECHILD) {
      // Should not happen (we only wait on our own pids), but do not spin
      // on a lost child forever: treat it like a SIGKILLed worker.
      p.kind = WorkerPoll::Kind::Signaled;
      p.value = SIGKILL;
    }
    return p;
  }

  void kill_worker(pid_t pid) override { kill(pid, SIGKILL); }

 private:
  const SupervisorOptions& opts_;
};

}  // namespace

long worker_rss_bytes(pid_t pid) {
  char path[64];
  std::snprintf(path, sizeof path, "/proc/%d/statm", static_cast<int>(pid));
  std::FILE* f = std::fopen(path, "r");
  if (!f) return -1;
  long pages_total = 0, pages_resident = 0;
  int n = std::fscanf(f, "%ld %ld", &pages_total, &pages_resident);
  std::fclose(f);
  if (n != 2) return -1;
  long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  return pages_resident * page;
}

const std::string* effective_fault_spec(const JobSpec& job,
                                        const SupervisorOptions& opts,
                                        int attempt) {
  // The injected spec for this attempt: the job's own fault wins (gated on
  // fault_attempts so "attempt 1 dies, attempt 2 runs clean" is expressible),
  // else the daemon-wide chaos spec. Null otherwise so workers never inherit
  // the daemon's fault plan by accident.
  if (!job.fault.empty() &&
      (job.fault_attempts == 0 || attempt <= job.fault_attempts)) {
    return &job.fault;
  }
  if (!opts.fault_spec.empty()) return &opts.fault_spec;
  return nullptr;
}

std::uint64_t backoff_delay_ms(const SupervisorOptions& opts,
                               const std::string& job_id, int attempt) {
  std::uint64_t delay = opts.backoff_base_ms;
  for (int i = 1; i < attempt && delay < opts.backoff_max_ms; ++i) {
    // Overflow-safe doubling: once delay passes max/2 the next double would
    // exceed (or wrap past) the cap, so saturate at the cap directly.
    if (delay > opts.backoff_max_ms / 2) {
      delay = opts.backoff_max_ms;
      break;
    }
    delay *= 2;
  }
  if (delay > opts.backoff_max_ms) delay = opts.backoff_max_ms;
  std::uint64_t h = fnv1a(job_id.data(), job_id.size(), 14695981039346656037ull);
  h = fnv1a(&attempt, sizeof attempt, h);
  h = fnv1a(&opts.jitter_seed, sizeof opts.jitter_seed, h);
  std::uint64_t jitter = opts.backoff_base_ms ? h % opts.backoff_base_ms : 0;
  // backoff_max_ms caps the *total* delay: jitter fills the gap below the
  // cap but never pushes past it.
  if (delay + jitter < delay || delay + jitter > opts.backoff_max_ms) {
    return opts.backoff_max_ms;
  }
  return delay + jitter;
}

std::unique_ptr<WorkerBackend> make_fork_exec_backend(const SupervisorOptions& opts) {
  return std::make_unique<ForkExecBackend>(opts);
}

Manifest run_jobs(const std::vector<JobSpec>& jobs, const SupervisorOptions& opts,
                  WorkerBackend& backend) {
  std::vector<Slot> slots(jobs.size());
  std::size_t open_jobs = jobs.size();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    slots[i].job = &jobs[i];
    slots[i].record.id = jobs[i].id;
    slots[i].record.design = jobs[i].design;
    if (opts.resume) {
      // Resume: re-seed this slot from the replayed journal. Settlement is
      // re-derived from the outcome list with the same classification the
      // reap path below applies, so a job whose attempts already finished
      // lands in the manifest exactly as the uninterrupted run would have
      // put it -- without relaunching anything.
      auto it = opts.resume->jobs.find(jobs[i].id);
      if (it != opts.resume->jobs.end()) {
        slots[i].record.outcomes = it->second.outcomes;
        slots[i].record.attempts = static_cast<int>(it->second.outcomes.size());
        JobState settled;
        if (derive_settlement(slots[i].record.outcomes, opts.max_attempts,
                              opts.mem_retry, &settled)) {
          slots[i].phase = Slot::Phase::Terminal;
          slots[i].record.state = settled;
          --open_jobs;
          if (opts.verbose) {
            std::fprintf(stderr, "scaldtvd: job %s -> %s (replayed from journal)\n",
                         jobs[i].id.c_str(), job_state_name(settled));
          }
        } else if (it->second.settled &&
                   (it->second.state == JobState::Shed ||
                    it->second.state == JobState::Quarantined)) {
          // Shed/Quarantined jobs never ran, so they have no outcomes for
          // derive_settlement to classify -- their journaled settle records
          // ARE the durable decision, and a resumed batch honors them
          // instead of re-deciding.
          slots[i].phase = Slot::Phase::Terminal;
          slots[i].record.state = it->second.state;
          --open_jobs;
          if (opts.verbose) {
            std::fprintf(stderr, "scaldtvd: job %s -> %s (replayed from journal)\n",
                         jobs[i].id.c_str(), job_state_name(it->second.state));
          }
        }
      }
    }
  }

  // Quarantine bookkeeping (only paid for when the breaker is enabled):
  // one design key per slot, one breaker per key. On resume the breaker
  // state is re-derived by walking the replayed terminal states in input
  // order -- per-key serialization (below) makes that walk reproduce the
  // live run's "consecutive" counts exactly -- with the journal's ledger
  // records unioned in as a belt for trips whose settle cluster was torn.
  const bool quarantine_on = opts.quarantine_after > 0;
  std::vector<std::string> keys;
  std::unordered_map<std::string, Breaker> breakers;
  std::unordered_set<std::string> ledgered;
  if (quarantine_on) {
    keys.resize(jobs.size());
    std::unordered_map<std::string, std::string> by_design;  // path+mode -> key
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      std::string cache_id = jobs[i].design + (jobs[i].compiled ? "|c" : "|s") +
                             (jobs[i].stdlib ? "+l" : "");
      auto it = by_design.find(cache_id);
      if (it == by_design.end()) {
        it = by_design.emplace(cache_id, quarantine_key(jobs[i])).first;
      }
      keys[i] = it->second;
    }
    if (opts.resume) {
      for (const std::string& k : opts.resume->quarantined_keys) {
        breakers[k].tripped = true;
        ledgered.insert(k);
      }
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].phase != Slot::Phase::Terminal) continue;
        Breaker& b = breakers[keys[i]];
        switch (slots[i].record.state) {
          case JobState::Crashed:
          case JobState::ResourceExhausted:
            if (!b.tripped && ++b.consec >= opts.quarantine_after) b.tripped = true;
            break;
          case JobState::Done:
          case JobState::Violations:
          case JobState::InputError:
          case JobState::Degraded:
            b.consec = 0;
            break;
          default:  // Shed / Quarantined / Requeued leave the breaker alone
            break;
        }
      }
    }
  }

  unsigned running = 0;
  bool draining = false;

  // The seeded kill point for the kill/restart chaos tests: armed with
  // kill9, the daemon dies right after a journal append -- the exact
  // boundary the write-ahead discipline must make safe.
  auto chaos_point = [&] {
    if (opts.journal) (void)fault::should_fail("serve.kill9");
  };

  auto shutting_down = [&] { return opts.shutdown && *opts.shutdown != 0; };

  auto note = [&](const Slot& s, const char* what) {
    if (opts.verbose) {
      std::fprintf(stderr, "scaldtvd: job %s attempt %d: %s\n",
                   s.record.id.c_str(), s.record.attempts, what);
    }
  };

  auto settle = [&](Slot& s, JobState state) {
    s.phase = Slot::Phase::Terminal;
    s.record.state = state;
    --open_jobs;
    // Requeued is not terminal from the journal's point of view: a drained
    // job re-enters the queue on --resume, so journaling it as settled
    // would freeze the shutdown into the batch's durable state.
    if (opts.journal && state != JobState::Requeued) {
      opts.journal->record_settle(s.record.id, state);
      chaos_point();
    }
    if (opts.verbose) {
      std::fprintf(stderr, "scaldtvd: job %s -> %s after %d attempt(s)\n",
                   s.record.id.c_str(), job_state_name(state), s.record.attempts);
    }
    if (quarantine_on) {
      // Breaker transition. Per-key serialization makes "consecutive"
      // deterministic: same-key jobs settle in input order, so the count
      // a resumed batch re-derives matches the live one.
      Breaker& b = breakers[keys[static_cast<std::size_t>(&s - slots.data())]];
      switch (state) {
        case JobState::Crashed:
        case JobState::ResourceExhausted:
          if (!b.tripped && ++b.consec >= opts.quarantine_after) {
            b.tripped = true;
            const std::string& key = keys[static_cast<std::size_t>(&s - slots.data())];
            if (opts.journal && !ledgered.count(key)) {
              opts.journal->record_quarantine(key);
              ledgered.insert(key);
              chaos_point();
            }
            if (opts.verbose) {
              std::fprintf(stderr,
                           "scaldtvd: design key %s quarantined after %d "
                           "consecutive failures\n", key.c_str(), b.consec);
            }
          }
          break;
        case JobState::Done:
        case JobState::Violations:
        case JobState::InputError:
        case JobState::Degraded:
          b.consec = 0;
          break;
        default:  // Shed / Quarantined / Requeued leave the breaker alone
          break;
      }
    }
  };

  // A failed attempt either backs off for a retry or, with attempts
  // exhausted, settles the job as Crashed. Under drain there is no retry to
  // back off for: the job goes back to the queue as Requeued -- an attempt
  // the shutdown interrupted is the drain's fault, not the job's, so it
  // must not tip the job into Crashed.
  auto handle_transient = [&](Slot& s) {
    if (draining) {
      settle(s, JobState::Requeued);
      return;
    }
    if (s.record.attempts >= opts.max_attempts) {
      // Exhausted retries normally mean Crashed; when the final attempt
      // died to the memory watchdog (--mem-retry path) the budget, not a
      // crash, is the story -- mirror derive_settlement exactly.
      settle(s, (!s.record.outcomes.empty() && s.record.outcomes.back() == "mem-limit")
                    ? JobState::ResourceExhausted
                    : JobState::Crashed);
      return;
    }
    std::uint64_t delay = backoff_delay_ms(opts, s.record.id, s.record.attempts);
    s.phase = Slot::Phase::Delayed;
    s.retry_at = Clock::now() + std::chrono::milliseconds(delay);
  };

  // Appends the just-recorded outcome (record.outcomes.back()) to the
  // journal. Called at every point an attempt's result becomes known.
  auto journal_outcome = [&](Slot& s) {
    if (opts.journal) {
      opts.journal->record_outcome(s.record.id, s.record.attempts,
                                   s.record.outcomes.back());
      chaos_point();
    }
  };

  auto launch = [&](Slot& s) {
    ++s.record.attempts;
    // Write-ahead: the intent to launch is durable before any process
    // exists, so a daemon killed mid-launch re-runs the same attempt
    // number on resume instead of silently skipping it.
    if (opts.journal) {
      opts.journal->record_launch(s.record.id, s.record.attempts);
      chaos_point();
    }
    if (fault::should_fail("serve.spawn")) {
      s.record.outcomes.push_back("spawn-failed");
      journal_outcome(s);
      note(s, "injected spawn failure");
      handle_transient(s);
      return;
    }
    pid_t pid = backend.launch(*s.job, s.record.attempts);
    if (pid < 0) {
      s.record.outcomes.push_back("spawn-failed");
      journal_outcome(s);
      note(s, "fork failed");
      handle_transient(s);
      return;
    }
    s.phase = Slot::Phase::Running;
    s.pid = pid;
    s.killed_by_watchdog = false;
    s.killed_by_memlimit = false;
    double timeout = s.job->time_limit > 0
                         ? s.job->time_limit + opts.watchdog_slack
                         : opts.default_timeout;
    s.watchdog = timeout > 0;
    if (s.watchdog) {
      s.kill_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(timeout));
    }
    ++running;
    note(s, "launched");
  };

  auto reap = [&](Slot& s, const WorkerPoll& p) {
    s.pid = -1;
    --running;
    if (s.killed_by_memlimit) {
      // The memory watchdog's kill wins the classification no matter how
      // the worker actually died (it may have exited in the race window
      // between the RSS sample and the SIGKILL landing): once the budget
      // was observed breached, the deterministic outcome is "mem-limit".
      s.record.outcomes.push_back("mem-limit");
      journal_outcome(s);
      note(s, "memory budget breached");
      if (opts.mem_retry) {
        handle_transient(s);
      } else {
        settle(s, JobState::ResourceExhausted);
      }
      return;
    }
    if (p.kind == WorkerPoll::Kind::Signaled) {
      if (s.killed_by_watchdog) {
        s.record.outcomes.push_back("timeout");
        journal_outcome(s);
        note(s, "watchdog timeout");
      } else {
        s.record.outcomes.push_back("signal:" + std::to_string(p.value));
        journal_outcome(s);
        note(s, "died by signal");
      }
      handle_transient(s);
      return;
    }
    int code = p.value;
    s.record.outcomes.push_back("exit:" + std::to_string(code));
    journal_outcome(s);
    switch (code) {
      case 0: settle(s, JobState::Done); return;
      case 1: settle(s, JobState::Violations); return;
      case 3: settle(s, JobState::Degraded); return;
      case 5:
        note(s, "transient failure");
        handle_transient(s);
        return;
      // 2 (input error) and 127 (exec failure: bad scaldtv path) are
      // permanent -- retrying cannot fix a bad design or a missing binary.
      default: settle(s, JobState::InputError); return;
    }
  };

  // Bounded admission: with --max-queue N, only the first N jobs by input
  // order are admitted; the rest settle (and journal) as Shed before the
  // scheduler ever sees them. Input order -- not runtime scheduling --
  // decides, so two runs of the batch (or a crash + --resume) shed the
  // exact same jobs. Slots already terminal from replay keep their state.
  if (opts.max_queue > 0) {
    for (std::size_t i = static_cast<std::size_t>(opts.max_queue);
         i < slots.size() && open_jobs > 0; ++i) {
      if (slots[i].phase != Slot::Phase::Terminal) {
        settle(slots[i], JobState::Shed);
      }
    }
  }

  // With the breaker enabled, a slot may only launch once every earlier
  // same-key slot is terminal: per-key settle order becomes input order,
  // which is what makes "K consecutive failures" (and therefore the
  // quarantine decision) independent of worker scheduling.
  auto key_blocked = [&](std::size_t i) {
    if (!quarantine_on) return false;
    for (std::size_t j = 0; j < i; ++j) {
      if (keys[j] == keys[i] && slots[j].phase != Slot::Phase::Terminal) return true;
    }
    return false;
  };

  // Adaptive poll cadence: a fixed sleep per iteration caps throughput at
  // workers / sleep regardless of how fast jobs actually finish (with warm
  // workers a job can complete in under a millisecond). After a productive
  // iteration -- a reap or a launch -- poll again immediately; only when
  // nothing moves does the sleep escalate back to the 10 ms idle cadence.
  unsigned idle_ms = 0;
  while (open_jobs > 0) {
    if (shutting_down() && !draining) {
      draining = true;
      if (opts.verbose) {
        std::fprintf(stderr, "scaldtvd: shutdown requested; draining %u running "
                             "worker(s), requeueing the rest\n", running);
      }
    }
    if (opts.journal && !opts.journal->ok() && !draining) {
      // The write-ahead journal latched a failed append (disk full, device
      // gone). Running blind would silently void the durability contract,
      // so wind down exactly like a shutdown: running workers finish, the
      // rest requeue, and scaldtvd exits loudly -- the on-disk journal is
      // still a clean prefix that --resume can replay once space returns.
      draining = true;
      std::fprintf(stderr, "scaldtvd: %s; draining (batch stays resumable)\n",
                   opts.journal->error().c_str());
    }
    Clock::time_point now = Clock::now();
    std::size_t settled_before = open_jobs;
    unsigned launched_before = running;

    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& s = slots[i];
      switch (s.phase) {
        case Slot::Phase::Running: {
          WorkerPoll p = backend.poll(s.pid);
          if (p.kind != WorkerPoll::Kind::Running) {
            reap(s, p);
          } else if (s.watchdog && !s.killed_by_watchdog && !s.killed_by_memlimit &&
                     now >= s.kill_at) {
            s.killed_by_watchdog = true;
            backend.kill_worker(s.pid);
          } else if (opts.mem_limit_mb > 0 && !s.killed_by_memlimit &&
                     !s.killed_by_watchdog) {
            long rss = worker_rss_bytes(s.pid);
            if (rss > opts.mem_limit_mb * (1l << 20)) {
              s.killed_by_memlimit = true;
              backend.kill_worker(s.pid);
            }
          }
          break;
        }
        case Slot::Phase::Delayed:
          if (draining) {
            settle(s, JobState::Requeued);
          } else if (now >= s.retry_at && running < opts.workers && !key_blocked(i)) {
            launch(s);
          }
          break;
        case Slot::Phase::Pending:
          if (draining) {
            settle(s, JobState::Requeued);
          } else if (quarantine_on && s.record.attempts == 0 &&
                     breakers[keys[i]].tripped) {
            // Fast-fail: the design's breaker is tripped and this job has
            // never run, so it is spared its max_attempts * timeout burn.
            // Jobs with prior attempts (resume) keep their retry budget.
            settle(s, JobState::Quarantined);
          } else if (running < opts.workers && !key_blocked(i)) {
            launch(s);
          }
          break;
        case Slot::Phase::Terminal:
          break;
      }
      if (open_jobs == 0) break;
    }

    bool progressed = open_jobs < settled_before || running != launched_before;
    if (progressed) {
      idle_ms = 0;
    } else if (open_jobs > 0) {
      idle_ms = idle_ms == 0 ? 1 : std::min(idle_ms * 2, 10u);
      std::this_thread::sleep_for(std::chrono::milliseconds(idle_ms));
    }
  }

  Manifest m;
  m.jobs.reserve(slots.size());
  for (Slot& s : slots) m.jobs.push_back(std::move(s.record));
  m.evictions = backend.evictions();
  m.durability_degraded = backend.durability_degraded();
  return m;
}

Manifest run_jobs(const std::vector<JobSpec>& jobs, const SupervisorOptions& opts) {
  std::unique_ptr<WorkerBackend> backend =
      opts.warm ? make_warm_pool_backend(opts) : make_fork_exec_backend(opts);
  return run_jobs(jobs, opts, *backend);
}

}  // namespace tv::serve
