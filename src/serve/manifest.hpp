// Run manifest: the byte-stable record scaldtvd writes when a batch ends.
//
// One JobRecord per job, sorted by id, fixed field order, no timestamps or
// durations -- two runs of the same batch with the same seed and fault plan
// produce byte-identical manifests, which is what lets the chaos tests (and
// operators) diff runs instead of eyeballing them.
#pragma once

#include <string>
#include <vector>

namespace tv::serve {

/// Terminal (and one non-terminal) states a job can end a run in.
enum class JobState {
  Done,        // worker exit 0: no violations
  Violations,  // worker exit 1: timing violations found
  InputError,  // worker exit 2: bad design / usage (permanent; no retry)
  Degraded,    // worker exit 3: partial results (resource degradation)
  Crashed,     // signal-killed / hung / transient on every attempt (exit 4)
  ResourceExhausted,  // breached --mem-limit-mb (exit 6; terminal unless
                      // --mem-retry, in which case only after max attempts)
  Shed,        // rejected at admission by --max-queue (exit 7; never ran)
  Quarantined, // fast-failed by the poison-design breaker (exit 8; never ran)
  Requeued,    // batch shut down before the job reached a terminal state
};

const char* job_state_name(JobState s);

/// Exit code scaldtvd reports for a job in this state (mirrors scaldtv's
/// contract; Crashed maps to the daemon-only code 4, ResourceExhausted /
/// Shed / Quarantined to the daemon-only codes 6 / 7 / 8, and Requeued to
/// -1 since the job never finished).
int job_state_exit_code(JobState s);

struct JobRecord {
  std::string id;
  std::string design;
  JobState state = JobState::Requeued;
  int attempts = 0;  // worker launches actually performed
  // One entry per attempt, oldest first: "exit:N", "signal:N", "timeout",
  // or "spawn-failed". Makes retries observable in the manifest.
  std::vector<std::string> outcomes;
};

struct Manifest {
  std::vector<JobRecord> jobs;

  // Warm-pool residents retired by the --max-resident LRU cap during this
  // run. Always 0 for the fork/exec backend and for uncapped warm runs, so
  // backend-identity checks stay byte-exact; with a cap configured the
  // count reflects actual completion scheduling and is — together with
  // durability_degraded — excluded from the byte-determinism guarantee.
  std::size_t evictions = 0;

  // Durable writes (snapshot sidecars) the run had to skip because the
  // filesystem refused them (ENOSPC-shaped failures). Serving continues
  // without durability; this counter makes the degradation visible in the
  // manifest. Like evictions, it reflects runtime scheduling/IO and is
  // excluded from the byte-determinism guarantee.
  std::size_t durability_degraded = 0;

  /// Serializes the manifest: jobs sorted by id, fixed key order, one
  /// summary counts block. Deterministic for a given set of records.
  std::string to_json() const;

  /// Count of jobs in `state`.
  std::size_t count(JobState state) const;

  /// The daemon exit code the batch maps to. Precedence (worst wins):
  /// input-error 2 > crashed 4 > resource-exhausted 6 > quarantined 8 >
  /// shed 7 > degraded 3 > violations 1 > clean 0.
  /// Requeued jobs do not affect the exit code (shutdown is not failure).
  int exit_code() const;
};

}  // namespace tv::serve
