#include "serve/warm_pool.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "core/compiled.hpp"
#include "core/fixpoint.hpp"
#include "core/incremental.hpp"
#include "core/verifier.hpp"
#include "diag/render.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/stdlib.hpp"
#include "util/crash.hpp"
#include "util/fault.hpp"

namespace tv::serve {

namespace {

/// Reads one newline-terminated line from `fd` into `line` (newline
/// stripped), buffering extra bytes in `buf`. False on EOF or error.
bool read_line(int fd, std::string& buf, std::string& line) {
  for (;;) {
    std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      line.assign(buf, 0, nl);
      buf.erase(0, nl + 1);
      return true;
    }
    char chunk[512];
    ssize_t n = read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

bool write_all(int fd, const std::string& s) {
  std::size_t off = 0;
  while (off < s.size()) {
    ssize_t n = write(fd, s.data() + off, s.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// One resident worker as the parent sees it.
struct WarmWorker {
  pid_t pid = -1;
  int cmd_fd = -1;   // parent writes run commands
  int resp_fd = -1;  // parent reads done lines (nonblocking)
  std::string key;   // which pool it belongs to
  std::string resp_buf;
  std::uint64_t last_used = 0;  // LRU stamp, set when the worker goes idle
};

class WarmPoolBackend : public WorkerBackend {
 public:
  explicit WarmPoolBackend(const SupervisorOptions& opts) : opts_(opts) {
    // A worker can die between our liveness probe and the command write;
    // the write must fail with EPIPE (a transient launch failure), not
    // kill the daemon.
    signal(SIGPIPE, SIG_IGN);
  }

  ~WarmPoolBackend() override {
    for (auto& [pid, w] : running_) destroy(w);
    for (auto& [key, pool] : idle_) {
      for (WarmWorker& w : pool) destroy(w);
    }
  }

  pid_t launch(const JobSpec& job, int attempt) override {
    const std::string* spec = effective_fault_spec(job, opts_, attempt);
    std::string key = pool_key(job, spec);
    WarmWorker w;
    auto it = idle_.find(key);
    if (it != idle_.end()) {
      std::vector<WarmWorker>& pool = it->second;
      while (!pool.empty() && w.pid < 0) {
        WarmWorker cand = std::move(pool.back());
        pool.pop_back();
        int status = 0;
        if (waitpid(cand.pid, &status, WNOHANG) == 0) {
          w = std::move(cand);  // still alive: reuse it warm
        } else {
          close_fds(cand);  // died while idle (already reaped): discard
        }
      }
    }
    if (w.pid < 0 && !spawn(job, key, w)) return -1;

    std::string cmd = "run " + format_double(job.time_limit) + ' ' +
                      std::to_string(job.jobs) + ' ' +
                      (spec && !spec->empty() ? *spec : std::string("-")) + ' ' +
                      (job.reverify.empty() ? std::string("-") : job.reverify) + '\n';
    w.resp_buf.clear();
    if (!write_all(w.cmd_fd, cmd)) {
      destroy(w);
      return -1;
    }
    pid_t pid = w.pid;
    running_.emplace(pid, std::move(w));
    return pid;
  }

  WorkerPoll poll(pid_t pid) override {
    WorkerPoll p;
    auto it = running_.find(pid);
    if (it == running_.end()) {
      p.kind = WorkerPoll::Kind::Signaled;
      p.value = SIGKILL;
      return p;
    }
    WarmWorker& w = it->second;

    // Drain whatever the worker has written so far.
    for (;;) {
      char chunk[256];
      ssize_t n = read(w.resp_fd, chunk, sizeof chunk);
      if (n > 0) {
        w.resp_buf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // no data yet (EAGAIN), EOF, or error: fall through
    }

    std::size_t nl = w.resp_buf.find('\n');
    if (nl != std::string::npos) {
      std::string line = w.resp_buf.substr(0, nl);
      int code = -1;
      WarmWorker done = std::move(w);
      running_.erase(it);
      if (std::sscanf(line.c_str(), "done %d", &code) == 1 && code >= 0) {
        p.kind = WorkerPoll::Kind::Exited;
        p.value = code;
        done.resp_buf.clear();
        // "nodur": the worker wanted to persist its fixpoint sidecar but
        // the filesystem refused -- the verdict stands, serving continues
        // without durability, and the manifest gets to see the count.
        if (line.find(" nodur") != std::string::npos) ++durability_degraded_;
        if (code == 0 || code == 1 || code == 3) {
          if (opts_.mem_limit_mb > 0 &&
              worker_rss_bytes(done.pid) > opts_.mem_limit_mb * (1l << 20)) {
            // Between-jobs soft check: the job finished with a verdict, so
            // it is NOT a mem-limit breach -- but pooling a resident whose
            // RSS already exceeds the per-job budget would start the next
            // job over budget. Retire it; the next job gets a fresh process.
            destroy(done);
          } else {
            // A verdict: the worker is healthy, keep it warm.
            done.last_used = ++tick_;
            idle_[done.key].push_back(std::move(done));
            enforce_resident_cap();
          }
        } else {
          // Transient failure or input error: the worker's state is
          // suspect, so the next attempt gets a fresh process.
          destroy(done);
        }
        return p;
      }
      // Protocol violation: drop the worker and report a lost attempt.
      destroy(done);
      p.kind = WorkerPoll::Kind::Signaled;
      p.value = SIGKILL;
      return p;
    }

    int status = 0;
    pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == 0) return p;  // still running
    // The worker died without answering (crash, watchdog SIGKILL, or a
    // clean exit that skipped the protocol -- equally useless to us).
    WarmWorker dead = std::move(w);
    running_.erase(it);
    close_fds(dead);
    dead.pid = -1;
    p.kind = WorkerPoll::Kind::Signaled;
    p.value = (r == pid && WIFSIGNALED(status)) ? WTERMSIG(status) : SIGKILL;
    return p;
  }

  void kill_worker(pid_t pid) override {
    if (running_.find(pid) != running_.end()) kill(pid, SIGKILL);
  }

  std::size_t evictions() const override { return evictions_; }

  std::size_t durability_degraded() const override { return durability_degraded_; }

 private:
  /// Retires least-recently-used idle residents until the pool fits
  /// opts_.max_resident (0 = unlimited). Running workers never count
  /// against the cap -- they are mid-job and cannot be retired; the cap
  /// bounds what is kept alive *between* jobs. An evicted design's next
  /// worker warm-starts from the `.tvf` sidecar its first baseline wrote.
  void enforce_resident_cap() {
    if (opts_.max_resident == 0) return;
    for (;;) {
      std::size_t total = 0;
      for (const auto& [key, pool] : idle_) total += pool.size();
      if (total <= opts_.max_resident) return;
      std::vector<WarmWorker>* lru_pool = nullptr;
      std::size_t lru_at = 0;
      std::uint64_t lru_stamp = UINT64_MAX;
      for (auto& [key, pool] : idle_) {
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (pool[i].last_used < lru_stamp) {
            lru_stamp = pool[i].last_used;
            lru_pool = &pool;
            lru_at = i;
          }
        }
      }
      if (lru_pool == nullptr) return;  // unreachable: total > 0
      WarmWorker victim = std::move((*lru_pool)[lru_at]);
      lru_pool->erase(lru_pool->begin() + static_cast<std::ptrdiff_t>(lru_at));
      destroy(victim);
      ++evictions_;
    }
  }
  // Idle workers are interchangeable only between jobs that would drive an
  // identical process: same design, same front-end mode, and -- for chaos
  // testing -- the same effective fault spec. Keying on the fault spec keeps
  // load-time fault sites (io.read) honest: a faulted job never inherits a
  // worker whose front end already ran clean, so injected faults fire
  // exactly as they do under fork/exec. Production jobs carry no fault spec
  // and share freely.
  static std::string pool_key(const JobSpec& job, const std::string* fault) {
    std::string key = job.design;
    key += job.compiled ? "|compiled" : "|source";
    key += job.stdlib ? "+stdlib" : "";
    if (fault != nullptr && !fault->empty()) key += "|fault=" + *fault;
    return key;
  }

  bool spawn(const JobSpec& job, const std::string& key, WarmWorker& w) {
    int cmd_pipe[2] = {-1, -1};
    int resp_pipe[2] = {-1, -1};
    if (pipe(cmd_pipe) != 0) return false;
    if (pipe(resp_pipe) != 0) {
      close(cmd_pipe[0]);
      close(cmd_pipe[1]);
      return false;
    }
    pid_t pid = fork();
    if (pid < 0) {
      close(cmd_pipe[0]);
      close(cmd_pipe[1]);
      close(resp_pipe[0]);
      close(resp_pipe[1]);
      return false;
    }
    if (pid == 0) {
      // Child: becomes a resident worker; never returns. Like fork/exec
      // workers, stdout goes to /dev/null (the manifest is the daemon's
      // output) and stderr passes through for crash reports.
      close(cmd_pipe[1]);
      close(resp_pipe[0]);
      signal(SIGTERM, SIG_DFL);
      signal(SIGINT, SIG_DFL);
      signal(SIGPIPE, SIG_DFL);
      int devnull = open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        dup2(devnull, STDOUT_FILENO);
        if (devnull > STDERR_FILENO) close(devnull);
      }
      _exit(warm_worker_main(job.design, job.stdlib, job.compiled,
                             opts_.max_resident > 0, cmd_pipe[0], resp_pipe[1]));
    }
    close(cmd_pipe[0]);
    close(resp_pipe[1]);
    int flags = fcntl(resp_pipe[0], F_GETFL, 0);
    fcntl(resp_pipe[0], F_SETFL, flags | O_NONBLOCK);
    w.pid = pid;
    w.cmd_fd = cmd_pipe[1];
    w.resp_fd = resp_pipe[0];
    w.key = key;
    return true;
  }

  static void close_fds(WarmWorker& w) {
    if (w.cmd_fd >= 0) close(w.cmd_fd);
    if (w.resp_fd >= 0) close(w.resp_fd);
    w.cmd_fd = w.resp_fd = -1;
  }

  static void destroy(WarmWorker& w) {
    close_fds(w);
    if (w.pid >= 0) {
      kill(w.pid, SIGKILL);
      int status = 0;
      waitpid(w.pid, &status, 0);
      w.pid = -1;
    }
  }

  const SupervisorOptions& opts_;
  std::unordered_map<pid_t, WarmWorker> running_;
  std::unordered_map<std::string, std::vector<WarmWorker>> idle_;
  std::uint64_t tick_ = 0;        // monotonic use counter for LRU stamps
  std::size_t evictions_ = 0;     // residents retired by the cap
  std::size_t durability_degraded_ = 0;  // "nodur" responses seen
};

// Response fd for the allocation-exhaustion handler. A resident worker is
// single-threaded and installs the handler once, before serving commands.
int g_oom_resp_fd = -1;

[[noreturn]] void oom_new_handler() {
  // Only async-signal-safe calls: the heap is gone, so no streams, no
  // strings, no unwinding. Answer the protocol, then leave with the clean
  // transient code so the supervisor retries instead of logging a mystery.
  static const char msg[] =
      "scaldtvd-worker: transient failure: out of memory (new handler)\n";
  ssize_t ignored = write(STDERR_FILENO, msg, sizeof msg - 1);
  if (g_oom_resp_fd >= 0) {
    static const char done[] = "done 5\n";
    ignored = write(g_oom_resp_fd, done, sizeof done - 1);
  }
  (void)ignored;
  _exit(5);
}

}  // namespace

std::unique_ptr<WorkerBackend> make_warm_pool_backend(const SupervisorOptions& opts) {
  return std::make_unique<WarmPoolBackend>(opts);
}

void warm_worker_install_oom_handler(int resp_fd) {
  g_oom_resp_fd = resp_fd;
  std::set_new_handler(oom_new_handler);
}

int warm_worker_main(const std::string& design, bool stdlib, bool compiled,
                     bool snapshot, int cmd_fd, int resp_fd) {
  crash::install_handler();
  warm_worker_install_oom_handler(resp_fd);
  crash::set_context(design.c_str(), "warm worker idle");
  fault::configure("");  // never inherit the daemon's own fault plan

  std::optional<hdl::ElaboratedDesign> loaded;
  std::optional<CompiledDesign> seeds;  // pre-interned waveform arena
  std::unique_ptr<Verifier> verifier;
  std::uint64_t artifact_hash = 0;  // bound .tvc content hash; 0 = source
  bool restored = false;            // first run answers from the snapshot
  bool snapshot_written = false;    // write the sidecar at most once

  auto dump_diags = [](const diag::DiagnosticEngine& diags) {
    if (!diags.diagnostics().empty()) {
      std::fputs(diag::render_text(diags).c_str(), stderr);
    }
  };

  // Loads the design on first use. Returns 0 or the exit code scaldtv
  // would have produced for the same failure.
  auto ensure_loaded = [&]() -> int {
    if (loaded) return 0;
    diag::DiagnosticEngine diags;
    if (fault::should_fail("io.read")) {
      std::fprintf(stderr, "scaldtvd-worker: injected read failure on %s\n",
                   design.c_str());
      return 5;
    }
    if (compiled) {
      crash::set_context(design.c_str(), "load compiled design");
      std::optional<CompiledDesign> c = load_compiled_file(design, diags);
      if (!c) {
        dump_diags(diags);
        return 2;
      }
      seeds = std::move(c);
      artifact_hash = seeds->content_hash;
      hdl::ElaboratedDesign d;
      d.name = seeds->name;
      d.netlist = std::move(seeds->netlist);
      d.options = seeds->options;
      d.cases = std::move(seeds->cases);
      d.summary.macro_instances = seeds->summary.macro_instances;
      d.summary.primitives = seeds->summary.primitives;
      d.summary.unique_signals = seeds->summary.unique_signals;
      d.summary.total_bits = seeds->summary.total_bits;
      d.summary.prims_by_kind = seeds->summary.prims_by_kind;
      loaded = std::move(d);
    } else {
      std::ifstream in(design);
      if (!in) {
        std::fprintf(stderr, "scaldtvd-worker: cannot open %s\n", design.c_str());
        return 2;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      crash::set_context(design.c_str(), "parse + macro expansion");
      if (stdlib) {
        loaded = hdl::elaborate_sources(
            {{"<stdlib>", hdl::std_chip_library()}, {design, buf.str()}}, diags);
      } else {
        diags.set_current_file(design);
        loaded = hdl::elaborate_source(buf.str(), diags);
      }
      if (!loaded) {
        dump_diags(diags);
        return 2;
      }
    }
    return 0;
  };

  // Forgets the resident design, verifier, and seed arena: the next run
  // command reloads from disk. The escape hatch whenever a reverify job
  // leaves (or may have left) the netlist off its artifact baseline.
  auto drop_resident = [&]() {
    verifier.reset();
    loaded.reset();
    seeds.reset();
    restored = false;
  };

  auto run_once = [&](double time_limit, unsigned jobs,
                      const std::string& reverify_path,
                      bool& durability_lost) -> int {
    // Snapshot participation under an injected fault plan: normally off
    // (evaluation-site faults must fire exactly as they do cold), but a
    // plan that *only* names io.write is the disk-pressure drill itself --
    // it cannot perturb evaluation, and skipping the sidecar write would
    // hide the very path being exercised.
    bool snapshot_ok = snapshot && (!fault::enabled() || fault::plan_only_site("io.write"));
    try {
      int rc = ensure_loaded();
      if (rc != 0) return rc;
      if (!verifier) {
        verifier = std::make_unique<Verifier>(loaded->netlist, loaded->options);
        if (seeds && verifier->evaluator().intern_context()) {
          preintern_seeds(*seeds, verifier->evaluator().intern_context()->table);
        }
        if (snapshot_ok) {
          // Eviction recovery: a previous worker for this design may have
          // left its fixed point in the `.tvf` sidecar. Restoring it warms
          // the baseline without re-paying the cold verification; any
          // defect (missing, corrupt, or bound to a different design /
          // artifact / option set) silently falls back to the cold path.
          // Runs under an injected fault plan never restore: the plan's
          // evaluation-site faults must fire exactly as they do cold.
          crash::set_context(design.c_str(), "restore snapshot (warm)");
          diag::DiagnosticEngine sdiags;
          std::optional<FixpointState> st =
              load_fixpoint_file(fixpoint_sidecar_path(design), sdiags);
          restored = st && verifier->restore(*st, artifact_hash, sdiags);
        }
      }
      verifier->evaluator().set_time_limit(time_limit);
      verifier->evaluator().set_jobs(jobs == 0 ? 1 : jobs);
      crash::set_context(design.c_str(), "verification (warm)");
      VerifyResult result;
      if (restored) {
        // The snapshot round-trip is byte-exact (tvfuzz --snapshot-diff),
        // so the restored report answers this job; later runs on this
        // worker re-verify against the warm intern table as usual.
        result = verifier->baseline();
        restored = false;
      } else {
        result = verifier->verify(loaded->cases);
        if (snapshot_ok && !snapshot_written &&
            result.converged && !result.partial) {
          // First clean convergent baseline: persist it so the next worker
          // for this design (post-eviction) warm-starts. Write failure is
          // not an error -- the sidecar is an optimization only -- but it
          // IS a visible degradation: the verdict goes back with "nodur"
          // so the manifest's durability_degraded counter sees it.
          std::string werror;
          if (!write_fixpoint_file(*verifier, loaded->name, artifact_hash,
                                   fixpoint_sidecar_path(design), &werror)) {
            std::fprintf(stderr,
                         "scaldtvd-worker: serving without durability: %s\n",
                         werror.c_str());
            durability_lost = true;
          }
          snapshot_written = true;
        }
      }
      if (!reverify_path.empty()) {
        crash::set_context(reverify_path.c_str(), "reverify (warm)");
        std::ifstream din(reverify_path);
        if (!din) {
          std::fprintf(stderr, "scaldtvd-worker: cannot open %s\n",
                       reverify_path.c_str());
          return 2;
        }
        if (fault::should_fail("io.read")) {
          std::fprintf(stderr, "scaldtvd-worker: injected read failure on %s\n",
                       reverify_path.c_str());
          return 5;
        }
        std::stringstream dbuf;
        dbuf << din.rdbuf();
        NetlistDelta delta;
        std::string derror;
        if (!parse_delta_json(dbuf.str(), loaded->netlist, &delta, &derror)) {
          std::fprintf(stderr, "scaldtvd-worker: %s: %s\n", reverify_path.c_str(),
                       derror.c_str());
          return 2;
        }
        ReverifyStats st;
        try {
          result = verifier->reverify(delta, &st);
        } catch (...) {
          // The netlist may hold a half-applied world (an injected fault can
          // fire after the delta landed); never let a later job see it.
          drop_resident();
          throw;
        }
        // Return the resident netlist to its artifact baseline so the next
        // job on this worker verifies the unedited design.
        try {
          verifier->reverify(st.inverse);
        } catch (...) {
          drop_resident();
        }
      }
      crash::set_context(design.c_str(), "warm worker idle");
      return diag::exit_code(false, result.partial,
                             result.total_violations() != 0);
    } catch (const fault::InjectedFault& e) {
      std::fprintf(stderr, "scaldtvd-worker: transient failure: %s\n", e.what());
      return 5;
    } catch (const std::bad_alloc&) {
      std::fprintf(stderr, "scaldtvd-worker: transient failure: out of memory\n");
      return 5;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "scaldtvd-worker: %s\n", e.what());
      return 2;
    }
  };

  std::string buf, line;
  for (;;) {
    if (!read_line(cmd_fd, buf, line)) return 0;  // parent closed: retire
    std::istringstream is(line);
    std::string verb, tl_text, jobs_text, fault_text;
    is >> verb >> tl_text >> jobs_text >> fault_text;
    if (verb != "run" || tl_text.empty() || jobs_text.empty() ||
        fault_text.empty()) {
      return 1;  // protocol error: retire loudly (parent treats as lost)
    }
    // The delta path is the rest of the line (it may contain spaces).
    std::string reverify_text;
    std::getline(is, reverify_text);
    std::size_t rstart = reverify_text.find_first_not_of(' ');
    reverify_text = rstart == std::string::npos ? "" : reverify_text.substr(rstart);
    if (reverify_text == "-") reverify_text.clear();
    double time_limit = std::strtod(tl_text.c_str(), nullptr);
    unsigned jobs = static_cast<unsigned>(std::strtoul(jobs_text.c_str(), nullptr, 10));
    // Reconfigure fault injection per run so @N counters behave exactly as
    // in a freshly exec'd worker.
    fault::configure(fault_text == "-" ? "" : fault_text);
    bool durability_lost = false;
    int code = run_once(time_limit, jobs, reverify_text, durability_lost);
    std::string resp = "done " + std::to_string(code);
    if (durability_lost) resp += " nodur";
    if (!write_all(resp_fd, resp + '\n')) return 0;
  }
}

}  // namespace tv::serve
