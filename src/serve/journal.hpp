// Write-ahead job journal for scaldtvd (docs/recovery.md).
//
// The supervisor's retry state machine is deterministic, but the process
// running it is not durable: SIGKILL (OOM killer, node reboot, chaos
// testing) between launches loses which attempts already ran and what they
// returned. The journal fixes that with classic write-ahead discipline:
// every job state transition is appended to an fsync'd newline-JSON log
// *before* the batch moves on, so a restarted daemon can replay the log
// and continue the batch exactly where it died.
//
// Record grammar (one flat JSON object per line):
//
//   {"journal": "scaldtvd", "version": 2, "jobs": 3,
//    "jobs_digest": "9a0f...", "seed": 7, "max_attempts": 3,
//    "mem_limit_mb": 0, "mem_retry": 0, "max_queue": 0,
//    "quarantine_after": 0}                                    header
//   {"job": "smoke-1", "attempt": 1, "event": "launch"}        intent
//   {"job": "smoke-1", "attempt": 1, "event": "outcome",
//    "outcome": "exit:0"}                                      result
//   {"job": "smoke-1", "event": "settle", "state": "done"}     terminal
//   {"event": "quarantine", "key": "9a0f..."}                  breaker trip
//
// The header binds the journal to the batch: a digest of every JobSpec
// plus the retry-relevant options (seed, max_attempts, and since version 2
// the overload policy: mem limit/retry, admission cap, quarantine
// threshold). --resume refuses a journal whose header disagrees with the
// jobs actually loaded -- replaying one batch's attempts into a different
// batch (or under a different policy) would fabricate results.
//
// Each record is one write(2) followed by fsync, so a crash can only tear
// the final line (a prefix of a record, no trailing newline). replay_journal
// tolerates exactly that -- a torn final line is dropped -- and rejects any
// other malformation loudly: mid-file garbage means the file is not our
// journal or the disk lied, and resuming from it would be a guess.
//
// Settlement is derived, not trusted: the terminal state of a replayed job
// is recomputed from its outcome list with the same classification rules
// the live supervisor uses (derive_settlement), so a journal killed between
// an outcome append and its settle append still resumes correctly --
// "settle" records are an observability nicety for attempt-based states.
// The exception is the *decision* states Shed and Quarantined: those jobs
// never ran, have no outcomes, and their settle records (plus the
// "quarantine" ledger records for breaker trips) ARE load-bearing -- a
// resumed batch honors them rather than re-deciding.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/job.hpp"
#include "serve/manifest.hpp"

namespace tv::serve {

inline constexpr std::uint32_t kJournalVersion = 2;

/// The overload-resilience knobs that change how a batch settles. Bound
/// into the journal header (version 2) so --resume refuses to replay a
/// batch under a different policy than the one that produced the journal.
struct BatchPolicy {
  long mem_limit_mb = 0;     // 0 = no per-job memory budget
  bool mem_retry = false;    // mem-limit breaches: retry (true) or terminal
  long max_queue = 0;        // 0 = unbounded admission
  int quarantine_after = 0;  // 0 = breaker disabled
};

/// Digest binding a journal to its batch: FNV-1a over every JobSpec field
/// of every job, in input order. Two invocations with the same job files
/// agree; any edit to any job disagrees.
std::uint64_t jobs_digest(const std::vector<JobSpec>& jobs);

/// Append-only journal writer. Failures are sticky: the first append that
/// cannot be written+fsync'd latches ok() false and the error message;
/// later appends are no-ops. The supervisor checks ok() when the batch
/// ends -- a batch that ran fine but could not be journaled must not
/// pretend to be durable.
class Journal {
 public:
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Creates (truncating any previous file) a fresh journal and writes the
  /// fsync'd header record. Returns nullptr with *error set on I/O failure.
  static std::unique_ptr<Journal> create(const std::string& path,
                                         const std::vector<JobSpec>& jobs,
                                         std::uint64_t seed, int max_attempts,
                                         const BatchPolicy& policy,
                                         std::string* error);

  /// Reopens an existing journal for appending (resume). The header is NOT
  /// rewritten; the caller must have replayed and validated it first.
  static std::unique_ptr<Journal> reopen(const std::string& path, std::string* error);

  /// Write-ahead intent: attempt `attempt` of `job_id` is about to launch.
  void record_launch(const std::string& job_id, int attempt);
  /// The attempt finished with `outcome` ("exit:N", "signal:N", "timeout",
  /// "mem-limit", or "spawn-failed" -- the manifest's outcome vocabulary).
  void record_outcome(const std::string& job_id, int attempt, const std::string& outcome);
  /// The job reached terminal state `state`.
  void record_settle(const std::string& job_id, JobState state);
  /// The poison-design breaker tripped for design key `key_hex` (ledger
  /// record; a resumed batch fast-fails that key's remaining jobs).
  void record_quarantine(const std::string& key_hex);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

 private:
  explicit Journal(int fd) : fd_(fd) {}
  void append(const std::string& line);

  int fd_ = -1;
  bool ok_ = true;
  std::string error_;
};

/// One job's replayed history.
struct ReplayedJob {
  std::vector<std::string> outcomes;  // oldest first, one per finished attempt
  bool settled = false;               // a settle record was seen
  JobState state = JobState::Requeued;
};

/// A replayed journal: the validated header plus per-job attempt history.
struct JournalReplay {
  std::uint32_t version = 0;
  std::size_t num_jobs = 0;
  std::uint64_t digest = 0;
  std::uint64_t seed = 0;
  int max_attempts = 0;
  BatchPolicy policy;
  std::unordered_map<std::string, ReplayedJob> jobs;
  // Design keys whose breaker trip made it to the ledger before the crash.
  std::vector<std::string> quarantined_keys;
};

/// Reads and validates a journal file. A torn final line (no trailing
/// newline -- the one artifact a crash mid-append can leave) is dropped
/// silently; any other malformation fails with *error set. Returns
/// std::nullopt on failure.
std::optional<JournalReplay> replay_journal(const std::string& path, std::string* error);

/// Re-applies the supervisor's outcome classification to a replayed
/// attempt history: walks `outcomes` oldest-first, returns true with *out
/// set when the job is already terminal (a terminal-classified outcome, or
/// `max_attempts` transient ones => Crashed -- or ResourceExhausted when
/// the final attempt died to the memory watchdog), false when the job must
/// re-enter the queue with its attempt count preserved. A "mem-limit"
/// outcome is terminal ResourceExhausted immediately unless `mem_retry`.
/// This is the exact function the live reap path applies, so a resumed
/// batch settles every replayed job precisely as the uninterrupted run
/// would have.
bool derive_settlement(const std::vector<std::string>& outcomes, int max_attempts,
                       bool mem_retry, JobState* out);

}  // namespace tv::serve
