#include "serve/job.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <unordered_set>

#include "util/fault.hpp"

namespace tv::serve {

namespace {

// Minimal recursive-descent scanner for the flat JSON objects job lines
// use: string, number, and boolean values only (no nesting, no arrays --
// the job schema is deliberately flat). Returns false on any deviation.
struct JsonScanner {
  const std::string& s;
  std::size_t i = 0;
  std::string error;

  explicit JsonScanner(const std::string& text) : s(text) {}

  bool fail(const std::string& why) {
    error = why + " at offset " + std::to_string(i);
    return false;
  }
  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool expect(char c) {
    skip_ws();
    if (i >= s.size() || s[i] != c) return fail(std::string("expected '") + c + "'");
    ++i;
    return true;
  }
  bool parse_string(std::string& out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\') {
        if (i >= s.size()) return fail("bad escape");
        char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: return fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;  // closing quote
    return true;
  }
  // Value as text: "str", number, or true/false. `is_string` reports which.
  bool parse_value(std::string& out, bool& is_string) {
    skip_ws();
    if (i >= s.size()) return fail("expected value");
    if (s[i] == '"') {
      is_string = true;
      return parse_string(out);
    }
    is_string = false;
    std::size_t start = i;
    while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                            s[i] == '-' || s[i] == '+' || s[i] == '.')) {
      ++i;
    }
    if (i == start) return fail("expected value");
    out = s.substr(start, i - start);
    return true;
  }
};

bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end && *end == '\0';
}

bool parse_long(const std::string& text, long& out) {
  char* end = nullptr;
  out = std::strtol(text.c_str(), &end, 10);
  return end && *end == '\0';
}

std::string format_double(double v) {
  // Shortest round-trip-ish form: trim trailing zeros so worker argv stays
  // stable and readable (5.0 -> "5", 0.25 -> "0.25").
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::optional<JobSpec> parse_job_line(const std::string& line, std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<JobSpec> {
    if (error) *error = why;
    return std::nullopt;
  };
  JsonScanner sc(line);
  if (!sc.expect('{')) return fail(sc.error);
  JobSpec job;
  bool first = true;
  for (;;) {
    sc.skip_ws();
    if (sc.i < sc.s.size() && sc.s[sc.i] == '}') {
      ++sc.i;
      break;
    }
    if (!first && !sc.expect(',')) return fail(sc.error);
    first = false;
    std::string key, value;
    bool is_string = false;
    if (!sc.parse_string(key)) return fail(sc.error);
    if (!sc.expect(':')) return fail(sc.error);
    if (!sc.parse_value(value, is_string)) return fail(sc.error);

    if (key == "id") {
      job.id = value;
    } else if (key == "design") {
      job.design = value;
    } else if (key == "stdlib") {
      if (value != "true" && value != "false") return fail("\"stdlib\" must be a boolean");
      job.stdlib = value == "true";
    } else if (key == "compiled") {
      if (value != "true" && value != "false") return fail("\"compiled\" must be a boolean");
      job.compiled = value == "true";
    } else if (key == "time_limit") {
      double v = 0;
      if (is_string || !parse_double(value, v) || v < 0) {
        return fail("\"time_limit\" must be a non-negative number");
      }
      job.time_limit = v;
    } else if (key == "jobs") {
      long v = 0;
      if (is_string || !parse_long(value, v) || v < 0) {
        return fail("\"jobs\" must be a non-negative integer");
      }
      job.jobs = static_cast<unsigned>(v);
    } else if (key == "reverify") {
      if (!is_string || value.empty()) {
        return fail("\"reverify\" must be a non-empty delta file path");
      }
      job.reverify = value;
    } else if (key == "fault") {
      std::string spec_error;
      // Validate eagerly so a typo'd chaos spec fails the batch load, not
      // silently runs every worker clean. Validation must not disturb the
      // process-wide plan, so parse into a scratch config... the fault
      // layer has no dry-run entry point; a structural check suffices here:
      // entries are validated by the worker at startup, and scaldtvd logs
      // worker stderr. Shape check: site@N:action per comma-entry.
      std::size_t from = 0;
      while (from <= value.size()) {
        std::size_t comma = value.find(',', from);
        if (comma == std::string::npos) comma = value.size();
        std::string part = value.substr(from, comma - from);
        if (!part.empty()) {
          std::size_t at = part.find('@');
          std::size_t colon = at == std::string::npos ? std::string::npos
                                                      : part.find(':', at);
          std::string action =
              colon == std::string::npos ? "" : part.substr(colon + 1);
          if (at == std::string::npos || at == 0 || colon == std::string::npos ||
              (action != "fail" && action != "abort" && action != "hang" &&
               action != "kill9" && action != "bloat")) {
            return fail("\"fault\" entry \"" + part + "\" is not site@N:action");
          }
        }
        from = comma + 1;
      }
      job.fault = value;
    } else if (key == "fault_attempts") {
      long v = 0;
      if (is_string || !parse_long(value, v) || v < 0) {
        return fail("\"fault_attempts\" must be a non-negative integer");
      }
      job.fault_attempts = static_cast<int>(v);
    } else {
      return fail("unknown key \"" + key + "\"");
    }
  }
  sc.skip_ws();
  if (sc.i != sc.s.size()) return fail("trailing characters after object");
  if (job.id.empty()) return fail("missing \"id\"");
  if (job.design.empty()) return fail("missing \"design\"");
  return job;
}

std::optional<std::vector<JobSpec>> parse_job_file(const std::string& path,
                                                   std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<std::vector<JobSpec>> {
    if (error) *error = path + ": " + why;
    return std::nullopt;
  };
  std::ifstream in(path);
  if (!in) return fail("cannot open");
  if (fault::should_fail("io.read")) return fail("injected read failure");
  std::vector<JobSpec> jobs;
  std::unordered_set<std::string> seen;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::string line_error;
    std::optional<JobSpec> job = parse_job_line(line, &line_error);
    if (!job) return fail("line " + std::to_string(lineno) + ": " + line_error);
    if (!seen.insert(job->id).second) {
      return fail("line " + std::to_string(lineno) + ": duplicate job id \"" +
                  job->id + "\"");
    }
    jobs.push_back(std::move(*job));
  }
  return jobs;
}

std::vector<std::string> worker_args(const JobSpec& job) {
  std::vector<std::string> args;
  if (job.compiled) args.push_back("--compiled");
  if (job.stdlib) args.push_back("--stdlib");
  if (job.time_limit > 0) {
    args.push_back("--time-limit");
    args.push_back(format_double(job.time_limit));
  }
  if (job.jobs > 0) {
    args.push_back("--jobs");
    args.push_back(std::to_string(job.jobs));
  }
  if (!job.reverify.empty()) {
    args.push_back("--reverify");
    args.push_back(job.reverify);
  }
  args.push_back(job.design);
  return args;
}

}  // namespace tv::serve
