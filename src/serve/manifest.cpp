#include "serve/manifest.hpp"

#include <algorithm>

namespace tv::serve {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::Done: return "done";
    case JobState::Violations: return "violations";
    case JobState::InputError: return "input-error";
    case JobState::Degraded: return "degraded";
    case JobState::Crashed: return "crashed";
    case JobState::ResourceExhausted: return "resource-exhausted";
    case JobState::Shed: return "shed";
    case JobState::Quarantined: return "quarantined";
    case JobState::Requeued: return "requeued";
  }
  return "unknown";
}

int job_state_exit_code(JobState s) {
  switch (s) {
    case JobState::Done: return 0;
    case JobState::Violations: return 1;
    case JobState::InputError: return 2;
    case JobState::Degraded: return 3;
    case JobState::Crashed: return 4;
    case JobState::ResourceExhausted: return 6;
    case JobState::Shed: return 7;
    case JobState::Quarantined: return 8;
    case JobState::Requeued: return -1;
  }
  return -1;
}

std::size_t Manifest::count(JobState state) const {
  std::size_t n = 0;
  for (const JobRecord& j : jobs) {
    if (j.state == state) ++n;
  }
  return n;
}

int Manifest::exit_code() const {
  if (count(JobState::InputError)) return 2;
  if (count(JobState::Crashed)) return 4;
  if (count(JobState::ResourceExhausted)) return 6;
  if (count(JobState::Quarantined)) return 8;
  if (count(JobState::Shed)) return 7;
  if (count(JobState::Degraded)) return 3;
  if (count(JobState::Violations)) return 1;
  return 0;
}

std::string Manifest::to_json() const {
  std::vector<const JobRecord*> sorted;
  sorted.reserve(jobs.size());
  for (const JobRecord& j : jobs) sorted.push_back(&j);
  std::sort(sorted.begin(), sorted.end(),
            [](const JobRecord* a, const JobRecord* b) { return a->id < b->id; });

  std::string out = "{\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const JobRecord& j = *sorted[i];
    out += "    {\"id\": ";
    append_escaped(out, j.id);
    out += ", \"design\": ";
    append_escaped(out, j.design);
    out += ", \"state\": \"";
    out += job_state_name(j.state);
    out += "\", \"exit_code\": ";
    out += std::to_string(job_state_exit_code(j.state));
    out += ", \"attempts\": ";
    out += std::to_string(j.attempts);
    out += ", \"outcomes\": [";
    for (std::size_t k = 0; k < j.outcomes.size(); ++k) {
      if (k) out += ", ";
      append_escaped(out, j.outcomes[k]);
    }
    out += "]}";
    if (i + 1 < sorted.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"counts\": {";
  const JobState order[] = {JobState::Done,
                            JobState::Violations,
                            JobState::InputError,
                            JobState::Degraded,
                            JobState::Crashed,
                            JobState::ResourceExhausted,
                            JobState::Shed,
                            JobState::Quarantined,
                            JobState::Requeued};
  bool first = true;
  for (JobState s : order) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += job_state_name(s);
    out += "\": ";
    out += std::to_string(count(s));
  }
  out += "},\n  \"evictions\": ";
  out += std::to_string(evictions);
  out += ",\n  \"durability_degraded\": ";
  out += std::to_string(durability_degraded);
  out += ",\n  \"exit_code\": ";
  out += std::to_string(exit_code());
  out += "\n}\n";
  return out;
}

}  // namespace tv::serve
