// Verification job specifications for the scaldtvd batch/daemon front end.
//
// A job names one design to verify and the per-run options the worker
// process (scaldtv) is launched with. Jobs arrive as newline-delimited JSON
// ("job files", one object per line -- appendable, diffable, and trivially
// mergeable from a directory watch):
//
//   {"id": "smoke-1", "design": "designs/stdlib_pipeline.shdl",
//    "stdlib": true, "time_limit": 5.0}
//   {"id": "chaos-3", "design": "designs/regfile_example.shdl",
//    "fault": "evaluator.eval@40:abort", "fault_attempts": 1}
//
// Recognized keys (all but id/design optional):
//   id             unique job name; duplicate ids in one batch are rejected
//   design         path to the .shdl source (relative to the daemon's cwd),
//                  or to a compiled .tvc artifact when "compiled" is true
//   compiled       bool: `design` is a scaldtvc artifact; the worker loads
//                  it with --compiled, skipping the HDL front end
//   stdlib         bool: prepend the standard chip-macro library (sources
//                  only; a compiled artifact already baked its library in)
//   time_limit     seconds: forwarded as scaldtv --time-limit; also sets
//                  the supervisor's watchdog for this job
//   jobs           case-analysis worker threads inside the worker process
//   reverify       path to a JSON netlist delta (docs/incremental.md): the
//                  worker verifies the baseline, applies the delta, and
//                  reports on the edited design (scaldtv --reverify); warm
//                  workers restore their resident baseline afterwards by
//                  applying the inverse delta
//   fault          TV_FAULT spec injected into the worker's environment
//   fault_attempts inject `fault` only on the first N attempts (0 = all):
//                  chaos tests use 1 so the retry path is observably
//                  exercised -- attempt 1 dies, attempt 2 runs clean
//
// The grammar is documented in docs/serving.md.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace tv::serve {

struct JobSpec {
  std::string id;
  std::string design;
  bool compiled = false;   // design is a scaldtvc artifact, not .shdl source
  bool stdlib = false;
  double time_limit = 0;   // 0 = no limit
  unsigned jobs = 0;       // 0 = worker default (1)
  std::string reverify;    // delta path; empty = plain verification
  std::string fault;       // empty = no injection
  int fault_attempts = 0;  // 0 = every attempt
};

/// Parses one newline-JSON job line. Returns std::nullopt and sets *error
/// on malformed input (bad JSON, missing id/design, unknown keys).
std::optional<JobSpec> parse_job_line(const std::string& line, std::string* error);

/// Parses a job file: one JSON object per line, blank lines and lines
/// starting with '#' ignored. On any bad line or duplicate id the whole
/// file is rejected (partial batches are worse than loud failures) with
/// *error naming the line number.
std::optional<std::vector<JobSpec>> parse_job_file(const std::string& path,
                                                   std::string* error);

/// The worker argv (excluding argv[0]) a job translates to.
std::vector<std::string> worker_args(const JobSpec& job);

}  // namespace tv::serve
