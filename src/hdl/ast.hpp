// Abstract syntax for SHDL (the textual SCALD stand-in of sec. 3.1).
//
// The grammar:
//
//   file        := (macro_def | design_def)*
//   macro_def   := 'macro' NAME '(' [ids] ')' '{' stmt* '}'
//   design_def  := 'design' NAME '{' stmt* '}'
//   stmt        := 'period' NUM ';' | 'clock_unit' NUM ';'
//                | 'default_wire' NUM ':' NUM ';'
//                | 'precision_skew' NUM ':' NUM ';'  (signs included)
//                | 'clock_skew' NUM ':' NUM ';'
//                | 'param' ('in'|'out') STRING {',' STRING} ';'
//                | 'wire_delay' STRING expr ':' expr ';'
//                | 'case' STRING '{' (STRING '=' NUM ';')* '}'
//                | 'use' NAME [attrs] pins ';'           -- macro instance
//                | PRIM  [attrs] pins ['->' STRING] ';'  -- primitive
//   pins        := '(' STRING {',' STRING} ')'
//   attrs       := '[' NAME '=' expr [':' expr] {',' ...} ']'
//   expr        := integer/real arithmetic over numbers and macro
//                  parameters (+ - * /)
//
// Signal strings use the full SCALD name syntax: assertions, "-" complement,
// "&" directive strings, "/M" local and "/P" parameter scope markers, and
// "<a:b>" vector ranges whose bounds may be parameter expressions
// ("I<0:SIZE-1>").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tv::hdl {

/// Arithmetic expression over numbers and named macro parameters.
struct Expr {
  enum class Op { Const, Param, Add, Sub, Mul, Div, Neg };
  Op op = Op::Const;
  double value = 0;          // Const
  std::string param;         // Param
  std::unique_ptr<Expr> lhs, rhs;

  double eval(const std::map<std::string, double>& env, int line) const;
};
using ExprPtr = std::unique_ptr<Expr>;

struct Attr {
  std::string name;
  ExprPtr lo;            // single value or range low
  ExprPtr hi;            // range high (null for single values)
  int line = 0;
  int column = 0;
};

struct Instance {
  std::string kind;                 // primitive name or macro name (for 'use')
  bool is_macro = false;
  std::vector<Attr> attrs;
  std::vector<std::string> pins;    // signal strings, inputs in order
  std::string output;               // "-> STRING" (empty for checkers/macros)
  int line = 0;
  int column = 0;
};

struct ParamDecl {
  bool is_output = false;
  std::vector<std::string> names;   // full signal strings, e.g. "I<0:SIZE-1>"
};

struct WireDelayDecl {
  std::string signal;
  ExprPtr dmin, dmax;
  int line = 0;
  int column = 0;
};

/// "synonym \"A\" = \"B\";" -- two names for one signal (Pass 1).
struct SynonymDecl {
  std::string a, b;
  int line = 0;
  int column = 0;
};

struct CaseDecl {
  std::string name;
  std::vector<std::pair<std::string, int>> pins;  // signal -> 0/1
  int line = 0;
  int column = 0;
};

struct Body {
  std::vector<ParamDecl> params;
  std::vector<Instance> instances;
  std::vector<WireDelayDecl> wire_delays;
  std::vector<SynonymDecl> synonyms;
  std::vector<CaseDecl> cases;
  // design-level settings (ns); negative period means "not set"
  double period_ns = -1;
  double clock_unit_ns = -1;
  double wire_min_ns = -1, wire_max_ns = -1;
  double precision_skew[2] = {1, -1};  // invalid marker (min > max)
  double clock_skew[2] = {1, -1};
  // Source spans for design-level diagnostics: the body's opening line and
  // the 'period' statement (0 = absent).
  int line = 0;
  int period_line = 0;
  int period_column = 0;
};

struct MacroDef {
  std::string name;
  std::vector<std::string> formals;  // numeric parameters (SIZE, ...)
  Body body;
  int line = 0;
  int column = 0;
  std::string file;  // source attribution when merged across sources
};

struct File {
  std::map<std::string, MacroDef> macros;
  std::string design_name;
  Body design;
  bool has_design = false;
  int design_line = 0;  // 'design' keyword line (0 when has_design is false)
  int end_line = 1;     // line of end-of-input, for whole-file diagnostics
};

}  // namespace tv::hdl
