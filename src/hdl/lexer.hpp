// Lexer for the SHDL hardware description language -- a textual stand-in
// for the graphics-based SCALD Hardware Description Language (thesis
// sec. 3.1). Signal names (which contain spaces, assertions, directives and
// scope markers) are written as double-quoted strings; everything else is a
// conventional identifier/number/punctuation token stream. Comments run
// from "--" to end of line.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "diag/diagnostic.hpp"

namespace tv::hdl {

enum class Tok : std::uint8_t {
  Ident,    // macro, design, period, reg, SIZE, ...
  Number,   // 50.0, 2, -1.0
  String,   // "W DATA .S0-6"
  LBrace, RBrace, LParen, RParen, LBracket, RBracket,
  Comma, Semi, Colon, Equal, Arrow,  // ->
  Plus, Minus, Star, Slash,
  End
};

struct Token {
  Tok kind = Tok::End;
  std::string text;   // identifier/string contents, number spelling
  double number = 0;  // valid when kind == Number
  int line = 0;
  int column = 0;     // 1-based column of the token's first character
};

/// Tokenizes the whole input. Throws std::invalid_argument (with a line
/// number) on unterminated strings or unexpected characters.
std::vector<Token> lex(std::string_view src);

/// Recovering form: lexical errors are reported through `diags` (with
/// line:column spans) and skipped -- an unterminated string yields the rest
/// of the line, a stray character is dropped, a malformed number becomes 0
/// -- so the parser always receives a complete token stream and can report
/// every error in one run.
std::vector<Token> lex(std::string_view src, diag::DiagnosticEngine& diags);

std::string_view tok_name(Tok t);

}  // namespace tv::hdl
