#include "hdl/elaborate.hpp"

#include <cctype>
#include <cmath>
#include <set>
#include <stdexcept>

#include "hdl/parser.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace tv::hdl {

namespace {

/// Unwinds elaboration after an error has been reported through the
/// DiagnosticEngine (diagnostic mode only).
struct ElabBail {};

/// One frame of the macro-expansion backtrace: where the macro was
/// instantiated, and which source file the expansion's line numbers now
/// refer to (macros merged from other sources keep their own numbering).
struct MacroFrame {
  std::string macro;
  std::string site_file;  // file of the instantiation site
  int line = 0;
  int column = 0;
};

/// Diagnostic-mode state, threaded through the expansion walk without
/// touching every helper signature. Null `diags` = legacy throwing mode.
struct DiagState {
  diag::DiagnosticEngine* diags = nullptr;
  std::string current_file;  // file whose line numbers apply right now
  std::vector<MacroFrame> stack;
};
thread_local DiagState t_diag;

struct DiagScope {
  explicit DiagScope(diag::DiagnosticEngine& diags) {
    t_diag.diags = &diags;
    t_diag.current_file = diags.current_file();
    t_diag.stack.clear();
  }
  ~DiagScope() { t_diag = DiagState{}; }
};

[[noreturn]] void fail(int line, int column, const char* code, const std::string& why) {
  if (t_diag.diags) {
    diag::Diagnostic& d = t_diag.diags->report(
        diag::Severity::Error, code, diag::SourceLoc{t_diag.current_file, line, column},
        why);
    for (auto it = t_diag.stack.rbegin(); it != t_diag.stack.rend(); ++it) {
      d.notes.push_back(
          diag::Note{diag::SourceLoc{it->site_file, it->line, it->column},
                     "in expansion of macro \"" + it->macro + "\" instantiated here"});
    }
    throw ElabBail{};
  }
  throw std::invalid_argument("SHDL elaboration error at line " + std::to_string(line) + ": " +
                              why);
}

/// Evaluates an attribute/wire-delay expression; an unknown macro parameter
/// becomes a located SHDL-E021 in diagnostic mode.
double eval_expr(const Expr& e, const std::map<std::string, double>& env, int line,
                 int column) {
  try {
    return e.eval(env, line);
  } catch (const std::invalid_argument& ex) {
    if (!t_diag.diags) throw;
    std::string msg = ex.what();
    if (std::size_t p = msg.find(": "); p != std::string::npos) msg = msg.substr(p + 2);
    fail(line, column, diag::kErrUnknownParam, msg);
  }
}

// --- tiny arithmetic evaluator for "<0:SIZE-1>" range texts ----------------

class RangeExpr {
 public:
  RangeExpr(std::string_view s, const std::map<std::string, double>& env, int line)
      : s_(s), env_(env), line_(line) {}

  double eval() {
    double v = sum();
    skip_ws();
    if (pos_ != s_.size()) {
      fail(line_, 0, diag::kErrBadRange, "bad range expression \"" + std::string(s_) + "\"");
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  double sum() {
    double v = product();
    while (peek() == '+' || peek() == '-') {
      char op = s_[pos_++];
      double r = product();
      v = op == '+' ? v + r : v - r;
    }
    return v;
  }
  double product() {
    double v = atom();
    while (peek() == '*' || peek() == '/') {
      char op = s_[pos_++];
      double r = atom();
      v = op == '*' ? v * r : v / r;
    }
    return v;
  }
  double atom() {
    char c = peek();
    if (c == '(') {
      ++pos_;
      double v = sum();
      if (peek() != ')') {
        fail(line_, 0, diag::kErrBadRange, "missing ')' in range expression");
      }
      ++pos_;
      return v;
    }
    if (c == '-') {
      ++pos_;
      return -atom();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.')) {
        ++pos_;
      }
      std::string text(s_.substr(start, pos_ - start));
      try {
        return std::stod(text);
      } catch (const std::exception&) {
        fail(line_, 0, diag::kErrBadRange, "bad number \"" + text + "\" in range expression");
      }
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_')) {
        ++pos_;
      }
      std::string name(s_.substr(start, pos_ - start));
      auto it = env_.find(name);
      if (it == env_.end()) {
        fail(line_, 0, diag::kErrUnknownParam, "unknown parameter \"" + name + "\" in range");
      }
      return it->second;
    }
    fail(line_, 0, diag::kErrBadRange, "bad range expression \"" + std::string(s_) + "\"");
  }

  std::string_view s_;
  const std::map<std::string, double>& env_;
  int line_;
  std::size_t pos_ = 0;
};

// --- signal-string decomposition and substitution ---------------------------

struct SigText {
  bool complement = false;
  std::string head;        // name before any "<range>"
  std::string range;       // text inside "<...>", empty if none
  std::string assertion;   // ".S0-6" etc. including the dot, no leading space
  std::string scope;       // "/M", "/P" or ""
  std::string directives;  // "&HZ" etc. including the '&'
};

SigText decompose(std::string_view s, int line) {
  SigText t;
  std::string_view rest = trim(s);
  if (!rest.empty() && rest[0] == '-' &&
      (rest.size() == 1 || rest[1] == ' ' ||
       std::isalpha(static_cast<unsigned char>(rest[1])))) {
    t.complement = true;
    rest = trim(rest.substr(1));
  }
  if (std::size_t amp = rest.rfind('&'); amp != std::string_view::npos) {
    t.directives = std::string(trim(rest.substr(amp)));
    rest = trim(rest.substr(0, amp));
  }
  if (rest.size() >= 2 && rest[rest.size() - 2] == '/') {
    char m = static_cast<char>(std::toupper(static_cast<unsigned char>(rest.back())));
    if (m == 'M' || m == 'P') {
      t.scope = std::string("/") + m;
      rest = trim(rest.substr(0, rest.size() - 2));
    }
  }
  // Assertion: " .P/.C/.S" token (same boundary rule as parse_signal_name).
  for (std::size_t i = 0; i + 1 < rest.size(); ++i) {
    if (rest[i] != '.') continue;
    if (i > 0 && rest[i - 1] != ' ') continue;
    char k = static_cast<char>(std::toupper(static_cast<unsigned char>(rest[i + 1])));
    if (k != 'P' && k != 'C' && k != 'S') continue;
    char next = (i + 2 < rest.size()) ? rest[i + 2] : ' ';
    if (next == ' ' || std::isdigit(static_cast<unsigned char>(next)) || next == '.') {
      t.assertion = std::string(trim(rest.substr(i)));
      rest = trim(rest.substr(0, i));
      break;
    }
  }
  // Vector range.
  if (std::size_t lt = rest.find('<'); lt != std::string_view::npos) {
    std::size_t gt = rest.rfind('>');
    if (gt == std::string_view::npos || gt < lt) {
      fail(line, 0, diag::kErrBadRange, "unterminated vector range");
    }
    t.range = std::string(rest.substr(lt + 1, gt - lt - 1));
    t.head = std::string(trim(rest.substr(0, lt)));
  } else {
    t.head = std::string(rest);
  }
  return t;
}

struct Resolved {
  std::string text;  // full signal reference, ready for Netlist::ref
  int width = 1;
};

// Environment of one macro instantiation.
struct Scope {
  std::map<std::string, double> env;           // numeric parameters
  std::map<std::string, Resolved> signal_map;  // formal base -> actual
  std::string path;                            // instance path for "/M" locals
};

Resolved resolve_signal(const std::string& raw, const Scope& scope, int line) {
  SigText t = decompose(raw, line);

  int width = 1;
  std::string range_text;
  if (!t.range.empty()) {
    auto colon = t.range.find(':');
    double lo, hi;
    if (colon == std::string::npos) {
      lo = hi = RangeExpr(t.range, scope.env, line).eval();
    } else {
      lo = RangeExpr(std::string_view(t.range).substr(0, colon), scope.env, line).eval();
      hi = RangeExpr(std::string_view(t.range).substr(colon + 1), scope.env, line).eval();
    }
    width = static_cast<int>(std::llround(std::abs(hi - lo))) + 1;
    char buf[48];
    std::snprintf(buf, sizeof buf, "<%lld:%lld>", static_cast<long long>(std::llround(lo)),
                  static_cast<long long>(std::llround(hi)));
    range_text = buf;
  }

  auto it = scope.signal_map.find(t.head);
  if (it != scope.signal_map.end()) {
    // Formal parameter: splice in the actual connection text; the actual's
    // own assertion wins, complements compose, directives concatenate.
    SigText a = decompose(it->second.text, line);
    Resolved r;
    r.width = std::max(width, it->second.width);
    bool comp = t.complement ^ a.complement;
    std::string text = a.head;
    if (!a.range.empty()) text += "<" + a.range + ">";
    if (!a.assertion.empty()) {
      text += " " + a.assertion;
    } else if (!t.assertion.empty()) {
      text += " " + t.assertion;
    }
    if (!a.scope.empty()) text += " " + a.scope;
    std::string dirs = t.directives.empty() ? a.directives : t.directives;
    if (!dirs.empty()) text += " " + dirs;
    r.text = comp ? "- " + text : text;
    return r;
  }
  if (t.scope == "/P") {
    fail(line, 0, diag::kErrNotAParameter,
         "\"" + raw + "\" is marked /P but is not a declared parameter");
  }

  // Global (unmarked) or instance-local ("/M") signal.
  Resolved r;
  r.width = width;
  std::string name = t.head;
  if (t.scope == "/M" && !scope.path.empty()) name = scope.path + "/" + name;
  std::string text = name + range_text;
  if (!t.assertion.empty()) text += " " + t.assertion;
  if (!t.scope.empty()) text += " " + t.scope;
  if (!t.directives.empty()) text += " " + t.directives;
  r.text = t.complement ? "- " + text : text;
  return r;
}

// --- expansion walk ---------------------------------------------------------

struct SynonymPair {
  Resolved a, b;
  int line = 0;
  int column = 0;
  std::string file;  // source attribution at resolution time
};

struct ExpandCtx {
  const File& file;
  Netlist* nl = nullptr;  // null during pass 1
  ExpandSummary sum;
  std::set<std::string> signal_names;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, int>>>> raw_cases;
  std::vector<std::pair<Resolved, std::pair<Time, Time>>> wire_delays;
  std::vector<SynonymPair> synonyms;
  std::size_t inst_counter = 0;
  int depth = 0;
  std::vector<diag::SourceLoc>* prim_locs = nullptr;  // PrimId -> site
};

double attr_value(const Instance& inst, const char* name, const Scope& scope, double dflt,
                  bool* found = nullptr, double* hi = nullptr) {
  for (const Attr& a : inst.attrs) {
    if (a.name == name) {
      if (found) *found = true;
      double lo = eval_expr(*a.lo, scope.env, a.line, a.column);
      if (hi) *hi = a.hi ? eval_expr(*a.hi, scope.env, a.line, a.column) : lo;
      return lo;
    }
  }
  if (found) *found = false;
  if (hi) *hi = dflt;
  return dflt;
}

void note_signal(ExpandCtx& ctx, const Resolved& r) {
  ParsedSignal p = parse_signal_name(r.text);
  ctx.signal_names.insert(p.full_name);
}

Ref make_ref(ExpandCtx& ctx, const Resolved& r) { return ctx.nl->ref(r.text, r.width); }

void build_primitive(ExpandCtx& ctx, const Instance& inst, const Scope& scope,
                     const std::vector<Resolved>& pins, const Resolved* out,
                     const std::string& name) {
  const std::string& k = inst.kind;
  double dmax_ns = 0;
  double dmin_ns = attr_value(inst, "delay", scope, 0, nullptr, &dmax_ns);
  if (t_diag.diags && (dmin_ns < 0 || dmax_ns < dmin_ns)) {
    // Legacy mode leaves this to the Netlist builders (same condition, but a
    // location-free exception); here we can name the instantiation site.
    fail(inst.line, inst.column, diag::kErrBadDelay,
         "\"" + k + "\": invalid delay range " + format_ns(from_ns(dmin_ns)) + ":" +
             format_ns(from_ns(dmax_ns)) + " (need 0 <= min <= max)");
  }
  Time dmin = from_ns(dmin_ns), dmax = from_ns(dmax_ns);
  int width = static_cast<int>(attr_value(inst, "width", scope, 1));

  auto need = [&](std::size_t n) {
    if (pins.size() != n) {
      fail(inst.line, inst.column, diag::kErrPinCount,
           "\"" + k + "\" needs " + std::to_string(n) + " inputs, got " +
               std::to_string(pins.size()));
    }
  };
  auto need_out = [&]() -> Ref {
    if (!out) {
      fail(inst.line, inst.column, diag::kErrPinCount,
           "\"" + k + "\" needs an output ('-> \"SIG\"')");
    }
    return make_ref(ctx, *out);
  };
  auto refs = [&](std::size_t from, std::size_t to) {
    std::vector<Ref> v;
    for (std::size_t i = from; i < to; ++i) v.push_back(make_ref(ctx, pins[i]));
    return v;
  };

  Netlist& nl = *ctx.nl;
  PrimId made = kNoPrim;
  if (k == "buf" || k == "wire") {
    need(1);
    made = nl.buf(name, dmin, dmax, make_ref(ctx, pins[0]), need_out(), width);
  } else if (k == "not") {
    need(1);
    made = nl.not_gate(name, dmin, dmax, make_ref(ctx, pins[0]), need_out(), width);
  } else if (k == "or" || k == "and" || k == "xor" || k == "chg") {
    if (pins.empty()) {
      fail(inst.line, inst.column, diag::kErrPinCount,
           "\"" + k + "\" needs at least one input");
    }
    PrimKind kind = k == "or"    ? PrimKind::Or
                    : k == "and" ? PrimKind::And
                    : k == "xor" ? PrimKind::Xor
                                 : PrimKind::Chg;
    made = nl.gate(kind, name, dmin, dmax, refs(0, pins.size()), need_out(), width);
  } else if (k == "mux2") {
    need(3);
    made = nl.mux2(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]),
            make_ref(ctx, pins[2]), need_out(), width);
  } else if (k == "mux4") {
    need(6);
    made = nl.mux4(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]), refs(2, 6),
            need_out(), width);
  } else if (k == "mux8") {
    need(11);
    made = nl.mux8(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]),
            make_ref(ctx, pins[2]), refs(3, 11), need_out(), width);
  } else if (k == "reg") {
    need(2);
    nl.reg(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]), need_out(), width);
  } else if (k == "reg_sr") {
    need(4);
    nl.reg_sr(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]),
              make_ref(ctx, pins[2]), make_ref(ctx, pins[3]), need_out(), width);
  } else if (k == "latch") {
    need(2);
    nl.latch(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]), need_out(),
             width);
  } else if (k == "latch_sr") {
    need(4);
    nl.latch_sr(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]),
                make_ref(ctx, pins[2]), make_ref(ctx, pins[3]), need_out(), width);
  } else if (k == "setup_hold") {
    need(2);
    nl.setup_hold_chk(name, from_ns(attr_value(inst, "setup", scope, 0)),
                      from_ns(attr_value(inst, "hold", scope, 0)), make_ref(ctx, pins[0]),
                      make_ref(ctx, pins[1]), width);
  } else if (k == "setup_rise_hold_fall") {
    need(2);
    nl.setup_rise_hold_fall_chk(name, from_ns(attr_value(inst, "setup", scope, 0)),
                                from_ns(attr_value(inst, "hold", scope, 0)),
                                make_ref(ctx, pins[0]), make_ref(ctx, pins[1]), width);
  } else if (k == "min_pulse_width") {
    need(1);
    nl.min_pulse_width_chk(name, from_ns(attr_value(inst, "min_high", scope, 0)),
                           from_ns(attr_value(inst, "min_low", scope, 0)),
                           make_ref(ctx, pins[0]));
  } else {
    fail(inst.line, inst.column, diag::kErrUnknownPrimitive,
         "unknown primitive \"" + k + "\" (and no such macro)");
  }

  // Optional polarity-dependent delays (sec. 4.2.2 extension):
  // [rise=min:max, fall=min:max] on any combinational primitive.
  bool has_rise = false, has_fall = false;
  double rise_hi = 0, fall_hi = 0;
  double rise_lo = attr_value(inst, "rise", scope, 0, &has_rise, &rise_hi);
  double fall_lo = attr_value(inst, "fall", scope, 0, &has_fall, &fall_hi);
  if (has_rise != has_fall) {
    fail(inst.line, inst.column, diag::kErrRiseFallPair,
         "\"" + k + "\": rise and fall delays must be given together");
  }
  if (has_rise && made != kNoPrim) {
    nl.set_rise_fall(made, RiseFallDelay{from_ns(rise_lo), from_ns(rise_hi), from_ns(fall_lo),
                                         from_ns(fall_hi)});
  }
}

std::string prim_stat_kind(const std::string& k, int width) {
  return k + (width > 1 ? "" : "");
}

void expand_body(ExpandCtx& ctx, const Body& body, const Scope& scope);

void expand_instance(ExpandCtx& ctx, const Instance& inst, const Scope& scope) {
  std::vector<Resolved> pins;
  pins.reserve(inst.pins.size());
  for (const std::string& p : inst.pins) pins.push_back(resolve_signal(p, scope, inst.line));

  if (inst.is_macro || ctx.file.macros.count(inst.kind)) {
    auto it = ctx.file.macros.find(inst.kind);
    if (it == ctx.file.macros.end()) {
      fail(inst.line, inst.column, diag::kErrUnknownMacro,
           "unknown macro \"" + inst.kind + "\"");
    }
    const MacroDef& def = it->second;
    if (ctx.depth > 64) {
      fail(inst.line, inst.column, diag::kErrMacroRecursion,
           "macro recursion too deep (cycle?)");
    }

    // While evaluating inside the macro's own source, diagnostics get a
    // backtrace frame ("in expansion of macro ... instantiated here") and
    // line numbers are attributed to the definition's file.
    struct FrameGuard {
      bool active = false;
      std::string saved_file;
      FrameGuard(const MacroDef& d, const Instance& i) {
        if (!t_diag.diags) return;
        active = true;
        t_diag.stack.push_back(MacroFrame{d.name, t_diag.current_file, i.line, i.column});
        saved_file = t_diag.current_file;
        if (!d.file.empty()) t_diag.current_file = d.file;
      }
      ~FrameGuard() {
        if (!active) return;
        t_diag.stack.pop_back();
        t_diag.current_file = std::move(saved_file);
      }
    };
    struct DepthGuard {
      int& d;
      explicit DepthGuard(int& depth) : d(depth) { ++d; }
      ~DepthGuard() { --d; }
    };

    Scope inner;
    inner.path =
        (scope.path.empty() ? "" : scope.path + "/") + inst.kind + "#" +
        std::to_string(ctx.inst_counter++);
    // Numeric parameters from attributes (evaluated at the *call* site,
    // before entering the macro's source scope).
    for (const std::string& formal : def.formals) {
      bool found = false;
      double v = attr_value(inst, formal.c_str(), scope, 0, &found);
      if (!found) {
        fail(inst.line, inst.column, diag::kErrMacroParams,
             "macro \"" + def.name + "\": parameter " + formal + " not given");
      }
      inner.env[formal] = v;
    }
    // Signal parameters: declaration order (ins and outs as declared) maps
    // positionally to the instance pins. Widths evaluate in the macro's
    // source scope (they reference the definition's lines).
    std::vector<std::pair<std::string, int>> formals;  // base name, decl width
    {
      FrameGuard frame(def, inst);
      for (const ParamDecl& d : def.body.params) {
        for (const std::string& n : d.names) {
          SigText t = decompose(n, def.line);
          int w = 1;
          if (!t.range.empty()) {
            auto colon = t.range.find(':');
            if (colon == std::string::npos) {
              w = 1;
            } else {
              double lo = RangeExpr(std::string_view(t.range).substr(0, colon), inner.env,
                                    def.line)
                              .eval();
              double hi = RangeExpr(std::string_view(t.range).substr(colon + 1), inner.env,
                                    def.line)
                              .eval();
              w = static_cast<int>(std::llround(std::abs(hi - lo))) + 1;
            }
          }
          formals.emplace_back(t.head, w);
        }
      }
    }
    if (formals.size() != pins.size()) {
      fail(inst.line, inst.column, diag::kErrMacroParams,
           "macro \"" + def.name + "\" declares " + std::to_string(formals.size()) +
               " parameters but " + std::to_string(pins.size()) + " were connected");
    }
    for (std::size_t i = 0; i < formals.size(); ++i) {
      Resolved actual = pins[i];
      actual.width = std::max(actual.width, formals[i].second);
      inner.signal_map.emplace(formals[i].first, std::move(actual));
    }
    ++ctx.sum.macro_instances;
    {
      DepthGuard depth(ctx.depth);
      FrameGuard frame(def, inst);
      expand_body(ctx, def.body, inner);
    }
    return;
  }

  // Primitive instance.
  ++ctx.sum.primitives;
  int width = static_cast<int>(attr_value(inst, "width", scope, 1));
  ctx.sum.total_bits += static_cast<std::size_t>(width);
  ++ctx.sum.prims_by_kind[prim_stat_kind(inst.kind, width)];
  for (const Resolved& r : pins) note_signal(ctx, r);
  Resolved out;
  bool has_out = !inst.output.empty();
  if (has_out) {
    out = resolve_signal(inst.output, scope, inst.line);
    note_signal(ctx, out);
  }
  if (ctx.nl) {
    std::string name = (scope.path.empty() ? "" : scope.path + "/") + inst.kind + "#" +
                       std::to_string(ctx.inst_counter++);
    std::size_t before = ctx.nl->num_prims();
    try {
      build_primitive(ctx, inst, scope, pins, has_out ? &out : nullptr, name);
    } catch (const ElabBail&) {
      throw;
    } catch (const std::exception& e) {
      // Netlist builders throw on semantic violations (conflicting
      // assertions, bad delay ranges); give them the instance's location.
      if (!t_diag.diags) throw;
      fail(inst.line, inst.column, diag::kErrElab, e.what());
    }
    if (ctx.prim_locs) {
      if (ctx.prim_locs->size() < ctx.nl->num_prims()) {
        ctx.prim_locs->resize(ctx.nl->num_prims());
      }
      diag::SourceLoc loc{t_diag.current_file, inst.line, inst.column};
      for (std::size_t p = before; p < ctx.nl->num_prims(); ++p) (*ctx.prim_locs)[p] = loc;
    }
  }
}

void expand_body(ExpandCtx& ctx, const Body& body, const Scope& scope) {
  for (const Instance& inst : body.instances) {
    // At the design's top level in diagnostic mode, a bad instance is
    // reported and the walk continues with the next statement, so one run
    // surfaces every elaboration error (capped by --max-errors).
    if (t_diag.diags && ctx.depth == 0) {
      try {
        expand_instance(ctx, inst, scope);
      } catch (const ElabBail&) {
        if (t_diag.diags->error_limit_reached()) throw;
      }
    } else {
      expand_instance(ctx, inst, scope);
    }
  }
  for (const WireDelayDecl& d : body.wire_delays) {
    Resolved r = resolve_signal(d.signal, scope, d.line);
    note_signal(ctx, r);
    Time lo = from_ns(eval_expr(*d.dmin, scope.env, d.line, d.column));
    Time hi = from_ns(eval_expr(*d.dmax, scope.env, d.line, d.column));
    ctx.wire_delays.emplace_back(std::move(r), std::make_pair(lo, hi));
  }
  for (const SynonymDecl& d : body.synonyms) {
    ctx.synonyms.push_back(SynonymPair{resolve_signal(d.a, scope, d.line),
                                       resolve_signal(d.b, scope, d.line), d.line, d.column,
                                       t_diag.current_file});
  }
  for (const CaseDecl& c : body.cases) {
    std::vector<std::pair<std::string, int>> pins;
    for (const auto& [sig, val] : c.pins) {
      pins.emplace_back(resolve_signal(sig, scope, c.line).text, val);
    }
    ctx.raw_cases.emplace_back(c.name, std::move(pins));
  }
}

ExpandCtx run_expansion(const File& file, Netlist* nl,
                        std::vector<diag::SourceLoc>* prim_locs = nullptr) {
  if (!file.has_design) {
    if (t_diag.diags) {
      fail(file.end_line, 0, diag::kErrNoDesign, "SHDL file has no design block");
    }
    throw std::invalid_argument("SHDL file has no design block");
  }
  ExpandCtx ctx{file, nl, {}, {}, {}, {}, {}, 0, 0, prim_locs};
  Scope top;
  expand_body(ctx, file.design, top);
  ctx.sum.unique_signals = ctx.signal_names.size();
  return ctx;
}

ElaboratedDesign elaborate_impl(const File& file) {
  ElaboratedDesign out;
  out.name = file.design_name;

  ExpandCtx ctx = run_expansion(file, &out.netlist,
                                t_diag.diags ? &out.prim_locs : nullptr);
  out.summary = ctx.sum;

  // Don't pile structural errors on top of expansion errors: the netlist is
  // incomplete once any instance failed to build.
  if (t_diag.diags && t_diag.diags->has_errors()) throw ElabBail{};

  const Body& d = file.design;
  if (d.period_ns <= 0) {
    if (t_diag.diags) {
      int line = d.period_line > 0 ? d.period_line : (d.line > 0 ? d.line : file.design_line);
      int column = d.period_line > 0 ? d.period_column : 0;
      fail(line, column, diag::kErrBadPeriod, "design must specify a positive period");
    }
    throw std::invalid_argument("design must specify a positive period");
  }
  out.options.period = from_ns(d.period_ns);
  out.options.units = ClockUnits::from_ns_per_unit(d.clock_unit_ns > 0 ? d.clock_unit_ns : 1.0);
  if (d.wire_min_ns >= 0) {
    out.options.default_wire = WireDelay{from_ns(d.wire_min_ns), from_ns(d.wire_max_ns)};
  }
  if (d.precision_skew[0] <= d.precision_skew[1]) {
    out.options.assertion_defaults.precision_skew_minus_ns = d.precision_skew[0];
    out.options.assertion_defaults.precision_skew_plus_ns = d.precision_skew[1];
  }
  if (d.clock_skew[0] <= d.clock_skew[1]) {
    out.options.assertion_defaults.clock_skew_minus_ns = d.clock_skew[0];
    out.options.assertion_defaults.clock_skew_plus_ns = d.clock_skew[1];
  }

  for (const SynonymPair& syn : ctx.synonyms) {
    try {
      Ref ra = out.netlist.ref(syn.a.text, syn.a.width);
      Ref rb = out.netlist.ref(syn.b.text, syn.b.width);
      out.netlist.merge_signals(ra.id, rb.id);
    } catch (const std::exception& e) {
      if (!t_diag.diags) throw;
      t_diag.current_file = syn.file;
      fail(syn.line, syn.column, diag::kErrElab, e.what());
    }
  }
  for (const auto& [resolved, range] : ctx.wire_delays) {
    Ref r = out.netlist.ref(resolved.text, resolved.width);
    out.netlist.set_wire_delay(r.id, range.first, range.second);
  }
  for (const auto& [name, pins] : ctx.raw_cases) {
    CaseSpec spec;
    spec.name = name;
    for (const auto& [sig, val] : pins) {
      Ref r = out.netlist.ref(sig);
      spec.pins.emplace_back(r.id, val ? Value::One : Value::Zero);
    }
    out.cases.push_back(std::move(spec));
  }
  if (t_diag.diags) {
    if (!out.netlist.finalize(*t_diag.diags, &out.prim_locs)) throw ElabBail{};
  } else {
    out.netlist.finalize();
  }
  return out;
}

}  // namespace

ExpandSummary expand_summary(const File& file) { return run_expansion(file, nullptr).sum; }

ElaboratedDesign elaborate(const File& file) { return elaborate_impl(file); }

ElaboratedDesign elaborate_source(std::string_view src) {
  return elaborate(parse(src));
}

std::optional<ElaboratedDesign> elaborate(const File& file, diag::DiagnosticEngine& diags) {
  DiagScope scope(diags);
  try {
    ElaboratedDesign out = elaborate_impl(file);
    if (diags.has_errors()) return std::nullopt;
    return out;
  } catch (const ElabBail&) {
    return std::nullopt;
  } catch (const std::exception& e) {
    diags.report(diag::Severity::Error, diag::kErrInternal, diag::SourceLoc{},
                 std::string("internal elaboration error: ") + e.what());
    return std::nullopt;
  }
}

std::optional<ElaboratedDesign> elaborate_source(std::string_view src,
                                                 diag::DiagnosticEngine& diags) {
  File f = parse(src, diags);
  if (diags.has_errors()) return std::nullopt;
  return elaborate(f, diags);
}

}  // namespace tv::hdl
