#include "hdl/elaborate.hpp"

#include <cctype>
#include <cmath>
#include <set>
#include <stdexcept>

#include "hdl/parser.hpp"
#include "util/strings.hpp"

namespace tv::hdl {

namespace {

[[noreturn]] void fail(int line, const std::string& why) {
  throw std::invalid_argument("SHDL elaboration error at line " + std::to_string(line) + ": " +
                              why);
}

// --- tiny arithmetic evaluator for "<0:SIZE-1>" range texts ----------------

class RangeExpr {
 public:
  RangeExpr(std::string_view s, const std::map<std::string, double>& env, int line)
      : s_(s), env_(env), line_(line) {}

  double eval() {
    double v = sum();
    skip_ws();
    if (pos_ != s_.size()) fail(line_, "bad range expression \"" + std::string(s_) + "\"");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  double sum() {
    double v = product();
    while (peek() == '+' || peek() == '-') {
      char op = s_[pos_++];
      double r = product();
      v = op == '+' ? v + r : v - r;
    }
    return v;
  }
  double product() {
    double v = atom();
    while (peek() == '*' || peek() == '/') {
      char op = s_[pos_++];
      double r = atom();
      v = op == '*' ? v * r : v / r;
    }
    return v;
  }
  double atom() {
    char c = peek();
    if (c == '(') {
      ++pos_;
      double v = sum();
      if (peek() != ')') fail(line_, "missing ')' in range expression");
      ++pos_;
      return v;
    }
    if (c == '-') {
      ++pos_;
      return -atom();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.')) {
        ++pos_;
      }
      return std::stod(std::string(s_.substr(start, pos_ - start)));
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_')) {
        ++pos_;
      }
      std::string name(s_.substr(start, pos_ - start));
      auto it = env_.find(name);
      if (it == env_.end()) fail(line_, "unknown parameter \"" + name + "\" in range");
      return it->second;
    }
    fail(line_, "bad range expression \"" + std::string(s_) + "\"");
  }

  std::string_view s_;
  const std::map<std::string, double>& env_;
  int line_;
  std::size_t pos_ = 0;
};

// --- signal-string decomposition and substitution ---------------------------

struct SigText {
  bool complement = false;
  std::string head;        // name before any "<range>"
  std::string range;       // text inside "<...>", empty if none
  std::string assertion;   // ".S0-6" etc. including the dot, no leading space
  std::string scope;       // "/M", "/P" or ""
  std::string directives;  // "&HZ" etc. including the '&'
};

SigText decompose(std::string_view s, int line) {
  SigText t;
  std::string_view rest = trim(s);
  if (!rest.empty() && rest[0] == '-' &&
      (rest.size() == 1 || rest[1] == ' ' ||
       std::isalpha(static_cast<unsigned char>(rest[1])))) {
    t.complement = true;
    rest = trim(rest.substr(1));
  }
  if (std::size_t amp = rest.rfind('&'); amp != std::string_view::npos) {
    t.directives = std::string(trim(rest.substr(amp)));
    rest = trim(rest.substr(0, amp));
  }
  if (rest.size() >= 2 && rest[rest.size() - 2] == '/') {
    char m = static_cast<char>(std::toupper(static_cast<unsigned char>(rest.back())));
    if (m == 'M' || m == 'P') {
      t.scope = std::string("/") + m;
      rest = trim(rest.substr(0, rest.size() - 2));
    }
  }
  // Assertion: " .P/.C/.S" token (same boundary rule as parse_signal_name).
  for (std::size_t i = 0; i + 1 < rest.size(); ++i) {
    if (rest[i] != '.') continue;
    if (i > 0 && rest[i - 1] != ' ') continue;
    char k = static_cast<char>(std::toupper(static_cast<unsigned char>(rest[i + 1])));
    if (k != 'P' && k != 'C' && k != 'S') continue;
    char next = (i + 2 < rest.size()) ? rest[i + 2] : ' ';
    if (next == ' ' || std::isdigit(static_cast<unsigned char>(next)) || next == '.') {
      t.assertion = std::string(trim(rest.substr(i)));
      rest = trim(rest.substr(0, i));
      break;
    }
  }
  // Vector range.
  if (std::size_t lt = rest.find('<'); lt != std::string_view::npos) {
    std::size_t gt = rest.rfind('>');
    if (gt == std::string_view::npos || gt < lt) fail(line, "unterminated vector range");
    t.range = std::string(rest.substr(lt + 1, gt - lt - 1));
    t.head = std::string(trim(rest.substr(0, lt)));
  } else {
    t.head = std::string(rest);
  }
  return t;
}

struct Resolved {
  std::string text;  // full signal reference, ready for Netlist::ref
  int width = 1;
};

// Environment of one macro instantiation.
struct Scope {
  std::map<std::string, double> env;           // numeric parameters
  std::map<std::string, Resolved> signal_map;  // formal base -> actual
  std::string path;                            // instance path for "/M" locals
};

Resolved resolve_signal(const std::string& raw, const Scope& scope, int line) {
  SigText t = decompose(raw, line);

  int width = 1;
  std::string range_text;
  if (!t.range.empty()) {
    auto colon = t.range.find(':');
    double lo, hi;
    if (colon == std::string::npos) {
      lo = hi = RangeExpr(t.range, scope.env, line).eval();
    } else {
      lo = RangeExpr(std::string_view(t.range).substr(0, colon), scope.env, line).eval();
      hi = RangeExpr(std::string_view(t.range).substr(colon + 1), scope.env, line).eval();
    }
    width = static_cast<int>(std::llround(std::abs(hi - lo))) + 1;
    char buf[48];
    std::snprintf(buf, sizeof buf, "<%lld:%lld>", static_cast<long long>(std::llround(lo)),
                  static_cast<long long>(std::llround(hi)));
    range_text = buf;
  }

  auto it = scope.signal_map.find(t.head);
  if (it != scope.signal_map.end()) {
    // Formal parameter: splice in the actual connection text; the actual's
    // own assertion wins, complements compose, directives concatenate.
    SigText a = decompose(it->second.text, line);
    Resolved r;
    r.width = std::max(width, it->second.width);
    bool comp = t.complement ^ a.complement;
    std::string text = a.head;
    if (!a.range.empty()) text += "<" + a.range + ">";
    if (!a.assertion.empty()) {
      text += " " + a.assertion;
    } else if (!t.assertion.empty()) {
      text += " " + t.assertion;
    }
    if (!a.scope.empty()) text += " " + a.scope;
    std::string dirs = t.directives.empty() ? a.directives : t.directives;
    if (!dirs.empty()) text += " " + dirs;
    r.text = comp ? "- " + text : text;
    return r;
  }
  if (t.scope == "/P") {
    fail(line, "\"" + raw + "\" is marked /P but is not a declared parameter");
  }

  // Global (unmarked) or instance-local ("/M") signal.
  Resolved r;
  r.width = width;
  std::string name = t.head;
  if (t.scope == "/M" && !scope.path.empty()) name = scope.path + "/" + name;
  std::string text = name + range_text;
  if (!t.assertion.empty()) text += " " + t.assertion;
  if (!t.scope.empty()) text += " " + t.scope;
  if (!t.directives.empty()) text += " " + t.directives;
  r.text = t.complement ? "- " + text : text;
  return r;
}

// --- expansion walk ---------------------------------------------------------

struct ExpandCtx {
  const File& file;
  Netlist* nl = nullptr;  // null during pass 1
  ExpandSummary sum;
  std::set<std::string> signal_names;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, int>>>> raw_cases;
  std::vector<std::pair<Resolved, std::pair<Time, Time>>> wire_delays;
  std::vector<std::pair<Resolved, Resolved>> synonyms;
  std::size_t inst_counter = 0;
  int depth = 0;
};

double attr_value(const Instance& inst, const char* name, const Scope& scope, double dflt,
                  bool* found = nullptr, double* hi = nullptr) {
  for (const Attr& a : inst.attrs) {
    if (a.name == name) {
      if (found) *found = true;
      double lo = a.lo->eval(scope.env, a.line);
      if (hi) *hi = a.hi ? a.hi->eval(scope.env, a.line) : lo;
      return lo;
    }
  }
  if (found) *found = false;
  if (hi) *hi = dflt;
  return dflt;
}

void note_signal(ExpandCtx& ctx, const Resolved& r) {
  ParsedSignal p = parse_signal_name(r.text);
  ctx.signal_names.insert(p.full_name);
}

Ref make_ref(ExpandCtx& ctx, const Resolved& r) { return ctx.nl->ref(r.text, r.width); }

void build_primitive(ExpandCtx& ctx, const Instance& inst, const Scope& scope,
                     const std::vector<Resolved>& pins, const Resolved* out,
                     const std::string& name) {
  const std::string& k = inst.kind;
  double dmax_ns = 0;
  double dmin_ns = attr_value(inst, "delay", scope, 0, nullptr, &dmax_ns);
  Time dmin = from_ns(dmin_ns), dmax = from_ns(dmax_ns);
  int width = static_cast<int>(attr_value(inst, "width", scope, 1));

  auto need = [&](std::size_t n) {
    if (pins.size() != n) {
      fail(inst.line, "\"" + k + "\" needs " + std::to_string(n) + " inputs, got " +
                          std::to_string(pins.size()));
    }
  };
  auto need_out = [&]() -> Ref {
    if (!out) fail(inst.line, "\"" + k + "\" needs an output ('-> \"SIG\"')");
    return make_ref(ctx, *out);
  };
  auto refs = [&](std::size_t from, std::size_t to) {
    std::vector<Ref> v;
    for (std::size_t i = from; i < to; ++i) v.push_back(make_ref(ctx, pins[i]));
    return v;
  };

  Netlist& nl = *ctx.nl;
  PrimId made = kNoPrim;
  if (k == "buf" || k == "wire") {
    need(1);
    made = nl.buf(name, dmin, dmax, make_ref(ctx, pins[0]), need_out(), width);
  } else if (k == "not") {
    need(1);
    made = nl.not_gate(name, dmin, dmax, make_ref(ctx, pins[0]), need_out(), width);
  } else if (k == "or" || k == "and" || k == "xor" || k == "chg") {
    if (pins.empty()) fail(inst.line, "\"" + k + "\" needs at least one input");
    PrimKind kind = k == "or"    ? PrimKind::Or
                    : k == "and" ? PrimKind::And
                    : k == "xor" ? PrimKind::Xor
                                 : PrimKind::Chg;
    made = nl.gate(kind, name, dmin, dmax, refs(0, pins.size()), need_out(), width);
  } else if (k == "mux2") {
    need(3);
    made = nl.mux2(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]),
            make_ref(ctx, pins[2]), need_out(), width);
  } else if (k == "mux4") {
    need(6);
    made = nl.mux4(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]), refs(2, 6),
            need_out(), width);
  } else if (k == "mux8") {
    need(11);
    made = nl.mux8(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]),
            make_ref(ctx, pins[2]), refs(3, 11), need_out(), width);
  } else if (k == "reg") {
    need(2);
    nl.reg(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]), need_out(), width);
  } else if (k == "reg_sr") {
    need(4);
    nl.reg_sr(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]),
              make_ref(ctx, pins[2]), make_ref(ctx, pins[3]), need_out(), width);
  } else if (k == "latch") {
    need(2);
    nl.latch(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]), need_out(),
             width);
  } else if (k == "latch_sr") {
    need(4);
    nl.latch_sr(name, dmin, dmax, make_ref(ctx, pins[0]), make_ref(ctx, pins[1]),
                make_ref(ctx, pins[2]), make_ref(ctx, pins[3]), need_out(), width);
  } else if (k == "setup_hold") {
    need(2);
    nl.setup_hold_chk(name, from_ns(attr_value(inst, "setup", scope, 0)),
                      from_ns(attr_value(inst, "hold", scope, 0)), make_ref(ctx, pins[0]),
                      make_ref(ctx, pins[1]), width);
  } else if (k == "setup_rise_hold_fall") {
    need(2);
    nl.setup_rise_hold_fall_chk(name, from_ns(attr_value(inst, "setup", scope, 0)),
                                from_ns(attr_value(inst, "hold", scope, 0)),
                                make_ref(ctx, pins[0]), make_ref(ctx, pins[1]), width);
  } else if (k == "min_pulse_width") {
    need(1);
    nl.min_pulse_width_chk(name, from_ns(attr_value(inst, "min_high", scope, 0)),
                           from_ns(attr_value(inst, "min_low", scope, 0)),
                           make_ref(ctx, pins[0]));
  } else {
    fail(inst.line, "unknown primitive \"" + k + "\" (and no such macro)");
  }

  // Optional polarity-dependent delays (sec. 4.2.2 extension):
  // [rise=min:max, fall=min:max] on any combinational primitive.
  bool has_rise = false, has_fall = false;
  double rise_hi = 0, fall_hi = 0;
  double rise_lo = attr_value(inst, "rise", scope, 0, &has_rise, &rise_hi);
  double fall_lo = attr_value(inst, "fall", scope, 0, &has_fall, &fall_hi);
  if (has_rise != has_fall) {
    fail(inst.line, "\"" + k + "\": rise and fall delays must be given together");
  }
  if (has_rise && made != kNoPrim) {
    nl.set_rise_fall(made, RiseFallDelay{from_ns(rise_lo), from_ns(rise_hi), from_ns(fall_lo),
                                         from_ns(fall_hi)});
  }
}

std::string prim_stat_kind(const std::string& k, int width) {
  return k + (width > 1 ? "" : "");
}

void expand_body(ExpandCtx& ctx, const Body& body, const Scope& scope);

void expand_instance(ExpandCtx& ctx, const Instance& inst, const Scope& scope) {
  std::vector<Resolved> pins;
  pins.reserve(inst.pins.size());
  for (const std::string& p : inst.pins) pins.push_back(resolve_signal(p, scope, inst.line));

  if (inst.is_macro || ctx.file.macros.count(inst.kind)) {
    auto it = ctx.file.macros.find(inst.kind);
    if (it == ctx.file.macros.end()) fail(inst.line, "unknown macro \"" + inst.kind + "\"");
    const MacroDef& def = it->second;
    if (ctx.depth > 64) fail(inst.line, "macro recursion too deep (cycle?)");

    Scope inner;
    inner.path =
        (scope.path.empty() ? "" : scope.path + "/") + inst.kind + "#" +
        std::to_string(ctx.inst_counter++);
    // Numeric parameters from attributes.
    for (const std::string& formal : def.formals) {
      bool found = false;
      double v = attr_value(inst, formal.c_str(), scope, 0, &found);
      if (!found) fail(inst.line, "macro \"" + def.name + "\": parameter " + formal + " not given");
      inner.env[formal] = v;
    }
    // Signal parameters: declaration order (ins and outs as declared) maps
    // positionally to the instance pins.
    std::vector<std::pair<std::string, int>> formals;  // base name, decl width
    for (const ParamDecl& d : def.body.params) {
      for (const std::string& n : d.names) {
        SigText t = decompose(n, def.line);
        int w = 1;
        if (!t.range.empty()) {
          auto colon = t.range.find(':');
          if (colon == std::string::npos) {
            w = 1;
          } else {
            double lo =
                RangeExpr(std::string_view(t.range).substr(0, colon), inner.env, def.line).eval();
            double hi = RangeExpr(std::string_view(t.range).substr(colon + 1), inner.env,
                                  def.line)
                            .eval();
            w = static_cast<int>(std::llround(std::abs(hi - lo))) + 1;
          }
        }
        formals.emplace_back(t.head, w);
      }
    }
    if (formals.size() != pins.size()) {
      fail(inst.line, "macro \"" + def.name + "\" declares " + std::to_string(formals.size()) +
                          " parameters but " + std::to_string(pins.size()) + " were connected");
    }
    for (std::size_t i = 0; i < formals.size(); ++i) {
      Resolved actual = pins[i];
      actual.width = std::max(actual.width, formals[i].second);
      inner.signal_map.emplace(formals[i].first, std::move(actual));
    }
    ++ctx.sum.macro_instances;
    ++ctx.depth;
    expand_body(ctx, def.body, inner);
    --ctx.depth;
    return;
  }

  // Primitive instance.
  ++ctx.sum.primitives;
  int width = static_cast<int>(attr_value(inst, "width", scope, 1));
  ctx.sum.total_bits += static_cast<std::size_t>(width);
  ++ctx.sum.prims_by_kind[prim_stat_kind(inst.kind, width)];
  for (const Resolved& r : pins) note_signal(ctx, r);
  Resolved out;
  bool has_out = !inst.output.empty();
  if (has_out) {
    out = resolve_signal(inst.output, scope, inst.line);
    note_signal(ctx, out);
  }
  if (ctx.nl) {
    std::string name = (scope.path.empty() ? "" : scope.path + "/") + inst.kind + "#" +
                       std::to_string(ctx.inst_counter++);
    build_primitive(ctx, inst, scope, pins, has_out ? &out : nullptr, name);
  }
}

void expand_body(ExpandCtx& ctx, const Body& body, const Scope& scope) {
  for (const Instance& inst : body.instances) expand_instance(ctx, inst, scope);
  for (const WireDelayDecl& d : body.wire_delays) {
    Resolved r = resolve_signal(d.signal, scope, d.line);
    note_signal(ctx, r);
    Time lo = from_ns(d.dmin->eval(scope.env, d.line));
    Time hi = from_ns(d.dmax->eval(scope.env, d.line));
    ctx.wire_delays.emplace_back(std::move(r), std::make_pair(lo, hi));
  }
  for (const SynonymDecl& d : body.synonyms) {
    ctx.synonyms.emplace_back(resolve_signal(d.a, scope, d.line),
                              resolve_signal(d.b, scope, d.line));
  }
  for (const CaseDecl& c : body.cases) {
    std::vector<std::pair<std::string, int>> pins;
    for (const auto& [sig, val] : c.pins) {
      pins.emplace_back(resolve_signal(sig, scope, 0).text, val);
    }
    ctx.raw_cases.emplace_back(c.name, std::move(pins));
  }
}

ExpandCtx run_expansion(const File& file, Netlist* nl) {
  if (!file.has_design) throw std::invalid_argument("SHDL file has no design block");
  ExpandCtx ctx{file, nl, {}, {}, {}, {}, {}, 0, 0};
  Scope top;
  expand_body(ctx, file.design, top);
  ctx.sum.unique_signals = ctx.signal_names.size();
  return ctx;
}

}  // namespace

ExpandSummary expand_summary(const File& file) { return run_expansion(file, nullptr).sum; }

ElaboratedDesign elaborate(const File& file) {
  ElaboratedDesign out;
  out.name = file.design_name;

  ExpandCtx ctx = run_expansion(file, &out.netlist);
  out.summary = ctx.sum;

  const Body& d = file.design;
  if (d.period_ns <= 0) throw std::invalid_argument("design must specify a positive period");
  out.options.period = from_ns(d.period_ns);
  out.options.units = ClockUnits::from_ns_per_unit(d.clock_unit_ns > 0 ? d.clock_unit_ns : 1.0);
  if (d.wire_min_ns >= 0) {
    out.options.default_wire = WireDelay{from_ns(d.wire_min_ns), from_ns(d.wire_max_ns)};
  }
  if (d.precision_skew[0] <= d.precision_skew[1]) {
    out.options.assertion_defaults.precision_skew_minus_ns = d.precision_skew[0];
    out.options.assertion_defaults.precision_skew_plus_ns = d.precision_skew[1];
  }
  if (d.clock_skew[0] <= d.clock_skew[1]) {
    out.options.assertion_defaults.clock_skew_minus_ns = d.clock_skew[0];
    out.options.assertion_defaults.clock_skew_plus_ns = d.clock_skew[1];
  }

  for (const auto& [a, b] : ctx.synonyms) {
    Ref ra = out.netlist.ref(a.text, a.width);
    Ref rb = out.netlist.ref(b.text, b.width);
    out.netlist.merge_signals(ra.id, rb.id);
  }
  for (const auto& [resolved, range] : ctx.wire_delays) {
    Ref r = out.netlist.ref(resolved.text, resolved.width);
    out.netlist.set_wire_delay(r.id, range.first, range.second);
  }
  for (const auto& [name, pins] : ctx.raw_cases) {
    CaseSpec spec;
    spec.name = name;
    for (const auto& [sig, val] : pins) {
      Ref r = out.netlist.ref(sig);
      spec.pins.emplace_back(r.id, val ? Value::One : Value::Zero);
    }
    out.cases.push_back(std::move(spec));
  }
  out.netlist.finalize();
  return out;
}

ElaboratedDesign elaborate_source(std::string_view src) {
  return elaborate(parse(src));
}

}  // namespace tv::hdl
