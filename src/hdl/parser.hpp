// Recursive-descent parser for SHDL. See ast.hpp for the grammar.
#pragma once

#include <string_view>

#include "hdl/ast.hpp"

namespace tv::hdl {

/// Parses a complete SHDL source file. Throws std::invalid_argument with
/// line information on syntax errors.
File parse(std::string_view src);

}  // namespace tv::hdl
