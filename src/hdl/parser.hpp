// Recursive-descent parser for SHDL. See ast.hpp for the grammar.
#pragma once

#include <string_view>

#include "diag/diagnostic.hpp"
#include "hdl/ast.hpp"

namespace tv::hdl {

/// Parses a complete SHDL source file. Throws std::invalid_argument with
/// line information on syntax errors.
File parse(std::string_view src);

/// Recovering form: syntax errors are reported through `diags` (with
/// line:column spans) and the parser resynchronizes at the next statement
/// boundary (';' or the enclosing '}'), so every error in the file is
/// reported in one run -- up to the engine's max_errors cap. The returned
/// File contains everything that parsed cleanly; callers must check
/// diags.has_errors() before elaborating.
File parse(std::string_view src, diag::DiagnosticEngine& diags);

}  // namespace tv::hdl
