#include "hdl/lexer.hpp"

#include <cctype>
#include <stdexcept>

namespace tv::hdl {

namespace {
[[noreturn]] void fail(int line, const std::string& why) {
  throw std::invalid_argument("SHDL lex error at line " + std::to_string(line) + ": " + why);
}
}  // namespace

std::string_view tok_name(Tok t) {
  switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::String: return "string";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Equal: return "'='";
    case Tok::Arrow: return "'->'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::End: return "end of input";
  }
  return "?";
}

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  auto push = [&](Tok k, std::string text = {}) {
    out.push_back(Token{k, std::move(text), 0, line});
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '-') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '>') {
      push(Tok::Arrow);
      i += 2;
      continue;
    }
    if (c == '"') {
      std::size_t start = ++i;
      while (i < src.size() && src[i] != '"' && src[i] != '\n') ++i;
      if (i >= src.size() || src[i] != '"') fail(line, "unterminated string");
      push(Tok::String, std::string(src.substr(start, i - start)));
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t start = i;
      while (i < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i])) || src[i] == '.')) {
        ++i;
      }
      Token t;
      t.kind = Tok::Number;
      t.text = std::string(src.substr(start, i - start));
      t.number = std::stod(t.text);
      t.line = line;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        ++i;
      }
      push(Tok::Ident, std::string(src.substr(start, i - start)));
      continue;
    }
    switch (c) {
      case '{': push(Tok::LBrace); break;
      case '}': push(Tok::RBrace); break;
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case '[': push(Tok::LBracket); break;
      case ']': push(Tok::RBracket); break;
      case ',': push(Tok::Comma); break;
      case ';': push(Tok::Semi); break;
      case ':': push(Tok::Colon); break;
      case '=': push(Tok::Equal); break;
      case '+': push(Tok::Plus); break;
      case '-': push(Tok::Minus); break;
      case '*': push(Tok::Star); break;
      case '/': push(Tok::Slash); break;
      default: fail(line, std::string("unexpected character '") + c + "'");
    }
    ++i;
  }
  push(Tok::End);
  return out;
}

}  // namespace tv::hdl
