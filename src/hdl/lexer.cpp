#include "hdl/lexer.hpp"

#include <cctype>
#include <stdexcept>

namespace tv::hdl {

std::string_view tok_name(Tok t) {
  switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::String: return "string";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Equal: return "'='";
    case Tok::Arrow: return "'->'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::End: return "end of input";
  }
  return "?";
}

namespace {

// One implementation for both entry points: with a DiagnosticEngine errors
// are reported and recovered from; without one the first error throws the
// legacy std::invalid_argument.
std::vector<Token> lex_impl(std::string_view src, diag::DiagnosticEngine* diags) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  std::size_t line_start = 0;
  auto column_of = [&](std::size_t pos) { return static_cast<int>(pos - line_start) + 1; };
  auto error = [&](std::size_t pos, const char* code, const std::string& why) {
    if (diags) {
      diags->report(diag::Severity::Error, code, line, column_of(pos), why);
      return;
    }
    throw std::invalid_argument("SHDL lex error at line " + std::to_string(line) + ": " + why);
  };
  auto push = [&](Tok k, std::string text = {}) {
    out.push_back(Token{k, std::move(text), 0, line, column_of(i)});
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '-') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '>') {
      push(Tok::Arrow);
      i += 2;
      continue;
    }
    if (c == '"') {
      std::size_t open = i;
      std::size_t start = ++i;
      while (i < src.size() && src[i] != '"' && src[i] != '\n') ++i;
      if (i >= src.size() || src[i] != '"') {
        error(open, diag::kErrUnterminatedString, "unterminated string");
        // Recovery: use the rest of the line as the string contents.
        out.push_back(
            Token{Tok::String, std::string(src.substr(start, i - start)), 0, line,
                  column_of(open)});
        continue;
      }
      out.push_back(Token{Tok::String, std::string(src.substr(start, i - start)), 0, line,
                          column_of(open)});
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t start = i;
      while (i < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i])) || src[i] == '.')) {
        ++i;
      }
      Token t;
      t.kind = Tok::Number;
      t.text = std::string(src.substr(start, i - start));
      t.line = line;
      t.column = column_of(start);
      // std::stod rejects multi-dot spellings ("1.2.3" parses the prefix but
      // we require the whole token) and throws on out-of-range magnitudes.
      try {
        std::size_t used = 0;
        t.number = std::stod(t.text, &used);
        if (used != t.text.size()) {
          error(start, diag::kErrMalformedNumber, "malformed number \"" + t.text + "\"");
          t.number = 0;
        }
      } catch (const std::exception&) {
        error(start, diag::kErrMalformedNumber, "malformed number \"" + t.text + "\"");
        t.number = 0;
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_')) {
        ++i;
      }
      out.push_back(Token{Tok::Ident, std::string(src.substr(start, i - start)), 0, line,
                          column_of(start)});
      continue;
    }
    switch (c) {
      case '{': push(Tok::LBrace); break;
      case '}': push(Tok::RBrace); break;
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case '[': push(Tok::LBracket); break;
      case ']': push(Tok::RBracket); break;
      case ',': push(Tok::Comma); break;
      case ';': push(Tok::Semi); break;
      case ':': push(Tok::Colon); break;
      case '=': push(Tok::Equal); break;
      case '+': push(Tok::Plus); break;
      case '-': push(Tok::Minus); break;
      case '*': push(Tok::Star); break;
      case '/': push(Tok::Slash); break;
      default:
        error(i, diag::kErrUnexpectedChar,
              std::string("unexpected character '") + c + "'");
        // Recovery: drop the character.
    }
    ++i;
  }
  push(Tok::End);
  return out;
}

}  // namespace

std::vector<Token> lex(std::string_view src) { return lex_impl(src, nullptr); }

std::vector<Token> lex(std::string_view src, diag::DiagnosticEngine& diags) {
  return lex_impl(src, &diags);
}

}  // namespace tv::hdl
