#include "hdl/stdlib.hpp"

#include <stdexcept>

#include "hdl/parser.hpp"

namespace tv::hdl {

std::string_view std_chip_library() {
  static const char* kLibrary = R"(
-- Standard ECL-10K chip timing models (thesis chapter III data sheets).

macro REG_10176(SIZE) {                -- edge-triggered register (Fig 3-7)
  param in "I<0:SIZE-1>", "CK";
  param out "Q<0:SIZE-1>";
  reg [delay=1.5:4.5, width=SIZE] ("I<0:SIZE-1>", "CK") -> "Q<0:SIZE-1>";
  setup_hold [setup=2.5, hold=1.5, width=SIZE] ("I<0:SIZE-1>", "CK");
}

macro REG_SR_10135(SIZE) {             -- register with async set/reset
  param in "I<0:SIZE-1>", "CK", "SET", "RST";
  param out "Q<0:SIZE-1>";
  reg_sr [delay=1.5:4.5, width=SIZE] ("I<0:SIZE-1>", "CK", "SET", "RST")
      -> "Q<0:SIZE-1>";
  setup_hold [setup=2.5, hold=1.5, width=SIZE] ("I<0:SIZE-1>", "CK");
  min_pulse_width [min_high=3.0] ("SET");
  min_pulse_width [min_high=3.0] ("RST");
}

macro RAM_16W_10145A(SIZE) {           -- 16-word register file (Fig 3-5)
  param in "I<0:SIZE-1>", "A<0:3>", "WE";
  param out "DO<0:SIZE-1>";
  setup_hold [setup=4.5, hold=-1.0, width=SIZE] ("I<0:SIZE-1>", "- WE");
  setup_rise_hold_fall [setup=3.5, hold=1.0, width=4] ("A<0:3>", "WE");
  min_pulse_width [min_high=4.0] ("WE");
  chg [delay=3.0:6.0, width=SIZE] ("A<0:3>", "WE") -> "DO<0:SIZE-1>";
}

macro MUX2_10158(SIZE) {               -- 2-input mux, buffered select (Fig 3-6)
  param in "SEL", "D0<0:SIZE-1>", "D1<0:SIZE-1>";
  param out "Q<0:SIZE-1>";
  buf [delay=0.3:1.2] ("SEL") -> "SELD /M";
  wire_delay "SELD /M" 0:0;
  mux2 [delay=1.2:3.3, width=SIZE] ("SELD /M", "D0<0:SIZE-1>", "D1<0:SIZE-1>")
      -> "Q<0:SIZE-1>";
}

macro MUX8_10164(SIZE) {               -- 8-input mux
  param in "S0", "S1", "S2",
           "D0<0:SIZE-1>", "D1<0:SIZE-1>", "D2<0:SIZE-1>", "D3<0:SIZE-1>",
           "D4<0:SIZE-1>", "D5<0:SIZE-1>", "D6<0:SIZE-1>", "D7<0:SIZE-1>";
  param out "Q<0:SIZE-1>";
  mux8 [delay=1.5:4.0, width=SIZE]
      ("S0", "S1", "S2", "D0<0:SIZE-1>", "D1<0:SIZE-1>", "D2<0:SIZE-1>",
       "D3<0:SIZE-1>", "D4<0:SIZE-1>", "D5<0:SIZE-1>", "D6<0:SIZE-1>",
       "D7<0:SIZE-1>") -> "Q<0:SIZE-1>";
}

macro ALU_10181(SIZE) {                -- ALU with output latch (Fig 3-9)
  param in "A<0:SIZE-1>", "B<0:SIZE-1>", "S<0:3>", "E";
  param out "F<0:SIZE-1>";
  chg [delay=3.0:6.0, width=SIZE] ("A<0:SIZE-1>", "B<0:SIZE-1>", "S<0:3>")
      -> "ALU CORE /M";
  latch [delay=1.0:3.5, width=SIZE] ("ALU CORE /M", "E") -> "F<0:SIZE-1>";
  setup_rise_hold_fall [setup=2.5, hold=1.0, width=SIZE] ("ALU CORE /M", "E");
}

macro LATCH_10133(SIZE) {              -- transparent latch
  param in "D<0:SIZE-1>", "EN";
  param out "Q<0:SIZE-1>";
  latch [delay=1.0:3.5, width=SIZE] ("D<0:SIZE-1>", "EN") -> "Q<0:SIZE-1>";
  setup_rise_hold_fall [setup=2.5, hold=1.0, width=SIZE] ("D<0:SIZE-1>", "EN");
}

macro PARITY_10160(SIZE) {             -- parity tree, CHG-modeled (sec. 2.4.2)
  param in "I<0:SIZE-1>";
  param out "P";
  chg [delay=2.7:5.6, width=1] ("I<0:SIZE-1>") -> "P";
}

macro OR2_10102() {                    -- 2-input OR gate chip (Fig 3-8)
  param in "A", "B";
  param out "Q";
  or [delay=1.0:2.9] ("A", "B") -> "Q";
}

macro AND2_10104() {
  param in "A", "B";
  param out "Q";
  and [delay=1.0:2.9] ("A", "B") -> "Q";
}

macro XOR2_10107() {
  param in "A", "B";
  param out "Q";
  xor [delay=1.1:3.3] ("A", "B") -> "Q";
}
)";
  return kLibrary;
}

ElaboratedDesign elaborate_sources(const std::vector<std::string_view>& sources) {
  File merged;
  for (std::string_view src : sources) {
    File f = parse(src);
    for (auto& [name, def] : f.macros) {
      if (merged.macros.count(name)) {
        throw std::invalid_argument("duplicate macro \"" + name + "\" across sources");
      }
      merged.macros.emplace(name, std::move(def));
    }
    if (f.has_design) {
      if (merged.has_design) {
        throw std::invalid_argument("multiple design blocks across sources");
      }
      merged.has_design = true;
      merged.design_name = std::move(f.design_name);
      merged.design = std::move(f.design);
    }
  }
  return elaborate(merged);
}

std::optional<ElaboratedDesign> elaborate_sources(const std::vector<NamedSource>& sources,
                                                  diag::DiagnosticEngine& diags) {
  File merged;
  std::string design_file;
  for (const NamedSource& src : sources) {
    diags.set_current_file(std::string(src.name));
    File f = parse(src.text, diags);
    for (auto& [name, def] : f.macros) {
      if (def.file.empty()) def.file = std::string(src.name);
      auto it = merged.macros.find(name);
      if (it != merged.macros.end()) {
        diag::Diagnostic& d = diags.report(
            diag::Severity::Error, diag::kErrDuplicateMacro,
            diag::SourceLoc{std::string(src.name), def.line, def.column},
            "duplicate macro \"" + name + "\" across sources");
        d.notes.push_back(diag::Note{
            diag::SourceLoc{it->second.file, it->second.line, it->second.column},
            "previous definition is here"});
        continue;
      }
      merged.macros.emplace(name, std::move(def));
    }
    if (f.has_design) {
      if (merged.has_design) {
        diag::Diagnostic& d = diags.report(
            diag::Severity::Error, diag::kErrMultipleDesigns,
            diag::SourceLoc{std::string(src.name), f.design_line, 0},
            "multiple design blocks across sources");
        d.notes.push_back(diag::Note{diag::SourceLoc{design_file, merged.design_line, 0},
                                     "previous design block is here"});
      } else {
        merged.has_design = true;
        merged.design_name = std::move(f.design_name);
        merged.design = std::move(f.design);
        merged.design_line = f.design_line;
        merged.end_line = f.end_line;
        design_file = std::string(src.name);
      }
    }
  }
  // Design-level diagnostics (bad period, missing design block, structural
  // errors) belong to the design's source; fall back to the last source
  // when no design block was found anywhere.
  if (merged.has_design) {
    diags.set_current_file(design_file);
  } else if (!sources.empty()) {
    diags.set_current_file(std::string(sources.back().name));
  }
  if (diags.has_errors()) return std::nullopt;
  return elaborate(merged, diags);
}

}  // namespace tv::hdl
