// The standard chip-macro library: SHDL timing models of the MSI ECL-10K
// parts the thesis builds its examples from (chapter III's data sheets),
// ready to `use` from any design.
//
//   REG_10176(SIZE)       edge-triggered register  (Fig 3-7)
//   REG_SR_10135(SIZE)    register with async set/reset
//   RAM_16W_10145A(SIZE)  16-word register file    (Figs 3-1..3-5)
//   MUX2_10158(SIZE)      2-input mux w/ select buffer (Fig 3-6)
//   MUX8_10164(SIZE)      8-input mux
//   ALU_10181(SIZE)       ALU with output latch    (Fig 3-9)
//   LATCH_10133(SIZE)     transparent latch
//   PARITY_10160(SIZE)    parity tree (CHG-modeled)
//   OR2_10102 / AND2_10104 / XOR2_10107  gate chips
//
// Usage:
//   hdl::ElaboratedDesign d =
//       hdl::elaborate_sources({hdl::std_chip_library(), my_design_src});
#pragma once

#include <string_view>
#include <vector>

#include "hdl/elaborate.hpp"

namespace tv::hdl {

/// The SHDL source of the standard chip library (macros only, no design).
std::string_view std_chip_library();

/// Parses several SHDL sources and merges them: macros accumulate across
/// sources (duplicates are an error), and exactly one source must contain
/// the design block. Then elaborates as usual.
ElaboratedDesign elaborate_sources(const std::vector<std::string_view>& sources);

/// One input to the diagnostic merge: `name` is what diagnostics cite as
/// the source file (use "<stdlib>" for the built-in library).
struct NamedSource {
  std::string_view name;
  std::string_view text;
};

/// Diagnostic form: every lex/parse/elaboration error across all sources is
/// reported through `diags`, attributed to the owning source's name (macro
/// expansion backtraces cross source boundaries). Returns std::nullopt when
/// any error was reported; never throws on malformed input.
std::optional<ElaboratedDesign> elaborate_sources(const std::vector<NamedSource>& sources,
                                                  diag::DiagnosticEngine& diags);

}  // namespace tv::hdl
