// Macro expansion and elaboration: SHDL AST -> flat Netlist.
//
// Mirrors the SCALD Macro Expander of thesis sec. 3.3.2: Pass 1 walks the
// hierarchy resolving signal names (synonyms between formal parameters and
// actual signals) and produces summary statistics; Pass 2 walks it again
// emitting the fully expanded design for the Timing Verifier. Expansion is
// textual at the signal-name level: a macro's "/P" parameters are replaced
// by the actual connection strings, "/M" locals are prefixed with the
// instance path, and unmarked names are global (shared across instances).
// Vector ranges "<0:SIZE-1>" are evaluated with the instance's numeric
// parameters to concrete bounds.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>

#include "core/evaluator.hpp"
#include "core/netlist.hpp"
#include "diag/diagnostic.hpp"
#include "hdl/ast.hpp"

namespace tv::hdl {

/// Pass 1 output: the design summary (Table 3-2's raw material).
struct ExpandSummary {
  std::size_t macro_instances = 0;   // "chips": every `use` expanded
  std::size_t primitives = 0;        // primitive instances after expansion
  std::size_t unique_signals = 0;    // after synonym resolution
  std::size_t total_bits = 0;        // sum of primitive widths
  std::map<std::string, std::size_t> prims_by_kind;
};

/// Fully elaborated design, ready to verify.
struct ElaboratedDesign {
  std::string name;
  Netlist netlist;
  VerifierOptions options;
  std::vector<CaseSpec> cases;
  ExpandSummary summary;
  /// Source location of each primitive's instantiation site (PrimId-indexed;
  /// populated only by the diagnostic entry points).
  std::vector<diag::SourceLoc> prim_locs;
};

/// Pass 1 only: expands the hierarchy without building the netlist.
ExpandSummary expand_summary(const File& file);

/// Pass 1 + Pass 2: expands and builds the finalized netlist. Throws
/// std::invalid_argument on semantic errors (unknown macro/primitive,
/// wrong pin counts, missing design block).
ElaboratedDesign elaborate(const File& file);

/// Convenience: parse + elaborate.
ElaboratedDesign elaborate_source(std::string_view src);

/// Diagnostic form: semantic errors are reported through `diags` with
/// source spans mapped back through macro expansion (each diagnostic
/// carries "in expansion of macro ... instantiated here" notes) and stable
/// error codes, instead of a thrown exception. Returns std::nullopt when
/// any error was reported. Never throws on malformed input; internal
/// failures surface as an SHDL-E099 diagnostic.
std::optional<ElaboratedDesign> elaborate(const File& file, diag::DiagnosticEngine& diags);

/// Parse (with statement-boundary recovery, reporting every syntax error)
/// + elaborate, all through `diags`.
std::optional<ElaboratedDesign> elaborate_source(std::string_view src,
                                                 diag::DiagnosticEngine& diags);

}  // namespace tv::hdl
