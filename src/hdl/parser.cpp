#include "hdl/parser.hpp"

#include <stdexcept>

#include "hdl/lexer.hpp"

namespace tv::hdl {

double Expr::eval(const std::map<std::string, double>& env, int line) const {
  switch (op) {
    case Op::Const: return value;
    case Op::Param: {
      auto it = env.find(param);
      if (it == env.end()) {
        throw std::invalid_argument("SHDL error at line " + std::to_string(line) +
                                    ": unknown parameter \"" + param + "\"");
      }
      return it->second;
    }
    case Op::Add: return lhs->eval(env, line) + rhs->eval(env, line);
    case Op::Sub: return lhs->eval(env, line) - rhs->eval(env, line);
    case Op::Mul: return lhs->eval(env, line) * rhs->eval(env, line);
    case Op::Div: return lhs->eval(env, line) / rhs->eval(env, line);
    case Op::Neg: return -lhs->eval(env, line);
  }
  return 0;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  File parse_file() {
    File f;
    while (peek().kind != Tok::End) {
      const Token& t = expect(Tok::Ident, "'macro' or 'design'");
      if (t.text == "macro") {
        MacroDef m = parse_macro();
        if (f.macros.count(m.name)) fail(m.line, "duplicate macro \"" + m.name + "\"");
        f.macros.emplace(m.name, std::move(m));
      } else if (t.text == "design") {
        if (f.has_design) fail(t.line, "multiple design blocks");
        f.design_name = expect(Tok::Ident, "design name").text;
        f.design = parse_body();
        f.has_design = true;
      } else {
        fail(t.line, "expected 'macro' or 'design', got \"" + t.text + "\"");
      }
    }
    return f;
  }

 private:
  const Token& peek(int ahead = 0) const {
    std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool accept(Tok k) {
    if (peek().kind == k) {
      take();
      return true;
    }
    return false;
  }
  const Token& expect(Tok k, const char* what) {
    if (peek().kind != k) {
      fail(peek().line, std::string("expected ") + what + ", got " +
                            std::string(tok_name(peek().kind)) +
                            (peek().text.empty() ? "" : " \"" + peek().text + "\""));
    }
    return take();
  }
  [[noreturn]] static void fail(int line, const std::string& why) {
    throw std::invalid_argument("SHDL parse error at line " + std::to_string(line) + ": " +
                                why);
  }

  MacroDef parse_macro() {
    MacroDef m;
    m.line = peek().line;
    m.name = expect(Tok::Ident, "macro name").text;
    expect(Tok::LParen, "'('");
    if (peek().kind == Tok::Ident) {
      m.formals.push_back(take().text);
      while (accept(Tok::Comma)) m.formals.push_back(expect(Tok::Ident, "parameter").text);
    }
    expect(Tok::RParen, "')'");
    m.body = parse_body();
    return m;
  }

  // expr := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)* ;
  // factor := NUMBER | IDENT | '-' factor | '(' expr ')'
  ExprPtr parse_expr() {
    ExprPtr e = parse_term();
    while (peek().kind == Tok::Plus || peek().kind == Tok::Minus) {
      bool add = take().kind == Tok::Plus;
      auto n = std::make_unique<Expr>();
      n->op = add ? Expr::Op::Add : Expr::Op::Sub;
      n->lhs = std::move(e);
      n->rhs = parse_term();
      e = std::move(n);
    }
    return e;
  }
  ExprPtr parse_term() {
    ExprPtr e = parse_factor();
    while (peek().kind == Tok::Star || peek().kind == Tok::Slash) {
      bool mul = take().kind == Tok::Star;
      auto n = std::make_unique<Expr>();
      n->op = mul ? Expr::Op::Mul : Expr::Op::Div;
      n->lhs = std::move(e);
      n->rhs = parse_factor();
      e = std::move(n);
    }
    return e;
  }
  ExprPtr parse_factor() {
    auto n = std::make_unique<Expr>();
    if (accept(Tok::Minus)) {
      n->op = Expr::Op::Neg;
      n->lhs = parse_factor();
      return n;
    }
    if (peek().kind == Tok::Number) {
      n->op = Expr::Op::Const;
      n->value = take().number;
      return n;
    }
    if (peek().kind == Tok::Ident) {
      n->op = Expr::Op::Param;
      n->param = take().text;
      return n;
    }
    if (accept(Tok::LParen)) {
      ExprPtr inner = parse_expr();
      expect(Tok::RParen, "')'");
      return inner;
    }
    fail(peek().line, "expected an expression");
  }

  double signed_number(const char* what) {
    bool neg = accept(Tok::Minus);
    double v = expect(Tok::Number, what).number;
    return neg ? -v : v;
  }

  std::vector<Attr> parse_attrs() {
    std::vector<Attr> attrs;
    if (!accept(Tok::LBracket)) return attrs;
    if (accept(Tok::RBracket)) return attrs;  // "[]": no attributes
    do {
      Attr a;
      a.line = peek().line;
      a.name = expect(Tok::Ident, "attribute name").text;
      expect(Tok::Equal, "'='");
      a.lo = parse_expr();
      if (accept(Tok::Colon)) a.hi = parse_expr();
      attrs.push_back(std::move(a));
    } while (accept(Tok::Comma));
    expect(Tok::RBracket, "']'");
    return attrs;
  }

  std::vector<std::string> parse_pins() {
    std::vector<std::string> pins;
    expect(Tok::LParen, "'('");
    if (peek().kind == Tok::String) {
      pins.push_back(take().text);
      while (accept(Tok::Comma)) pins.push_back(expect(Tok::String, "signal string").text);
    }
    expect(Tok::RParen, "')'");
    return pins;
  }

  Body parse_body() {
    Body b;
    expect(Tok::LBrace, "'{'");
    while (!accept(Tok::RBrace)) {
      const Token& t = expect(Tok::Ident, "statement");
      if (t.text == "period") {
        b.period_ns = expect(Tok::Number, "period in ns").number;
        expect(Tok::Semi, "';'");
      } else if (t.text == "clock_unit") {
        b.clock_unit_ns = expect(Tok::Number, "clock unit in ns").number;
        expect(Tok::Semi, "';'");
      } else if (t.text == "default_wire") {
        b.wire_min_ns = expect(Tok::Number, "min wire delay").number;
        expect(Tok::Colon, "':'");
        b.wire_max_ns = expect(Tok::Number, "max wire delay").number;
        expect(Tok::Semi, "';'");
      } else if (t.text == "precision_skew" || t.text == "clock_skew") {
        double* dst = t.text == "precision_skew" ? b.precision_skew : b.clock_skew;
        dst[0] = signed_number("skew minus");
        expect(Tok::Colon, "':'");
        dst[1] = signed_number("skew plus");
        expect(Tok::Semi, "';'");
      } else if (t.text == "param") {
        ParamDecl d;
        const Token& dir = expect(Tok::Ident, "'in' or 'out'");
        if (dir.text == "out") {
          d.is_output = true;
        } else if (dir.text != "in") {
          fail(dir.line, "expected 'in' or 'out'");
        }
        d.names.push_back(expect(Tok::String, "parameter signal").text);
        while (accept(Tok::Comma)) {
          d.names.push_back(expect(Tok::String, "parameter signal").text);
        }
        expect(Tok::Semi, "';'");
        b.params.push_back(std::move(d));
      } else if (t.text == "synonym") {
        SynonymDecl d;
        d.line = t.line;
        d.a = expect(Tok::String, "signal string").text;
        expect(Tok::Equal, "'='");
        d.b = expect(Tok::String, "signal string").text;
        expect(Tok::Semi, "';'");
        b.synonyms.push_back(std::move(d));
      } else if (t.text == "wire_delay") {
        WireDelayDecl d;
        d.line = t.line;
        d.signal = expect(Tok::String, "signal string").text;
        d.dmin = parse_expr();
        expect(Tok::Colon, "':'");
        d.dmax = parse_expr();
        expect(Tok::Semi, "';'");
        b.wire_delays.push_back(std::move(d));
      } else if (t.text == "case") {
        CaseDecl c;
        c.name = expect(Tok::String, "case name").text;
        expect(Tok::LBrace, "'{'");
        while (!accept(Tok::RBrace)) {
          std::string sig = expect(Tok::String, "signal string").text;
          expect(Tok::Equal, "'='");
          double v = expect(Tok::Number, "0 or 1").number;
          if (v != 0 && v != 1) fail(t.line, "case values must be 0 or 1");
          expect(Tok::Semi, "';'");
          c.pins.emplace_back(std::move(sig), static_cast<int>(v));
        }
        b.cases.push_back(std::move(c));
      } else if (t.text == "use") {
        Instance inst;
        inst.is_macro = true;
        inst.line = t.line;
        inst.kind = expect(Tok::Ident, "macro name").text;
        inst.attrs = parse_attrs();
        inst.pins = parse_pins();
        expect(Tok::Semi, "';'");
        b.instances.push_back(std::move(inst));
      } else {
        // Primitive instance.
        Instance inst;
        inst.line = t.line;
        inst.kind = t.text;
        inst.attrs = parse_attrs();
        inst.pins = parse_pins();
        if (accept(Tok::Arrow)) inst.output = expect(Tok::String, "output signal").text;
        expect(Tok::Semi, "';'");
        b.instances.push_back(std::move(inst));
      }
    }
    return b;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

File parse(std::string_view src) { return Parser(lex(src)).parse_file(); }

}  // namespace tv::hdl
