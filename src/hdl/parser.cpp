#include "hdl/parser.hpp"

#include <stdexcept>

#include "hdl/lexer.hpp"

namespace tv::hdl {

double Expr::eval(const std::map<std::string, double>& env, int line) const {
  switch (op) {
    case Op::Const: return value;
    case Op::Param: {
      auto it = env.find(param);
      if (it == env.end()) {
        throw std::invalid_argument("SHDL error at line " + std::to_string(line) +
                                    ": unknown parameter \"" + param + "\"");
      }
      return it->second;
    }
    case Op::Add: return lhs->eval(env, line) + rhs->eval(env, line);
    case Op::Sub: return lhs->eval(env, line) - rhs->eval(env, line);
    case Op::Mul: return lhs->eval(env, line) * rhs->eval(env, line);
    case Op::Div: return lhs->eval(env, line) / rhs->eval(env, line);
    case Op::Neg: return -lhs->eval(env, line);
  }
  return 0;
}

namespace {

/// Thrown on a syntax error in recovery mode: unwinds to the nearest
/// statement-boundary handler, which resynchronizes and continues.
struct ParseBail {};
/// Thrown when the error cap is reached: unwinds the whole parse.
struct ParseAbort {};

class Parser {
 public:
  Parser(std::vector<Token> toks, diag::DiagnosticEngine* diags)
      : toks_(std::move(toks)), diags_(diags) {}

  File parse_file() {
    File f;
    if (!toks_.empty()) f.end_line = toks_.back().line;
    try {
      while (peek().kind != Tok::End) {
        if (diags_) {
          try {
            parse_top_level(f);
          } catch (const ParseBail&) {
            if (diags_->error_limit_reached()) throw ParseAbort{};
            sync_top_level();
          }
        } else {
          parse_top_level(f);
        }
      }
    } catch (const ParseAbort&) {
      // Error cap reached: return what parsed so far.
    }
    return f;
  }

 private:
  void parse_top_level(File& f) {
    const Token& t = expect(Tok::Ident, "'macro' or 'design'");
    if (t.text == "macro") {
      MacroDef m = parse_macro();
      if (f.macros.count(m.name)) {
        // Recovery (via the bail/sync path) keeps the first definition.
        fail(m.line, m.column, diag::kErrDuplicateMacro,
             "duplicate macro \"" + m.name + "\"",
             Note{f.macros[m.name].line, "previous definition is here"});
      }
      f.macros.emplace(m.name, std::move(m));
    } else if (t.text == "design") {
      if (f.has_design) {
        // Recovery (via the bail/sync path) skips the extra design body.
        fail(t.line, t.column, diag::kErrMultipleDesigns, "multiple design blocks",
             Note{f.design_line, "previous design block is here"});
      }
      int design_line = t.line;
      f.design_name = expect(Tok::Ident, "design name").text;
      f.design = parse_body();
      f.has_design = true;
      f.design_line = design_line;
    } else {
      fail(t.line, t.column, diag::kErrExpectedToken,
           "expected 'macro' or 'design', got \"" + t.text + "\"");
    }
  }

  const Token& peek(int ahead = 0) const {
    std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool accept(Tok k) {
    if (peek().kind == k) {
      take();
      return true;
    }
    return false;
  }
  const Token& expect(Tok k, const char* what) {
    if (peek().kind != k) {
      fail(peek().line, peek().column, diag::kErrExpectedToken,
           std::string("expected ") + what + ", got " +
               std::string(tok_name(peek().kind)) +
               (peek().text.empty() ? "" : " \"" + peek().text + "\""));
    }
    return take();
  }

  struct Note {
    int line;
    const char* message;
  };

  /// Reports or throws, depending on mode. In recovery mode this reports
  /// the diagnostic and throws ParseBail so the statement handler can
  /// resynchronize; note that non-fatal duplicate-definition errors call it
  /// and then continue via their own recovery path only when it returns --
  /// so in recovery mode it never returns.
  [[noreturn]] void fail(int line, int column, const char* code, const std::string& why,
                         Note note = Note{0, ""}) {
    if (diags_) {
      diag::Diagnostic& d = diags_->report(diag::Severity::Error, code, line, column, why);
      if (note.line > 0) {
        d.notes.push_back(diag::Note{
            diag::SourceLoc{diags_->current_file(), note.line, 0}, note.message});
      }
      throw ParseBail{};
    }
    throw std::invalid_argument("SHDL parse error at line " + std::to_string(line) + ": " +
                                why);
  }

  // --- recovery synchronization --------------------------------------------

  /// Skips to the next plausible top-level definition: an Ident "macro" /
  /// "design" outside any brace nesting, or end of input.
  void sync_top_level() {
    int depth = 0;
    while (peek().kind != Tok::End) {
      const Token& t = peek();
      if (t.kind == Tok::LBrace) {
        ++depth;
      } else if (t.kind == Tok::RBrace) {
        if (depth > 0) --depth;
        // A top-level '}' most likely closes the block we bailed out of.
        if (depth == 0) {
          take();
          return;
        }
      } else if (depth == 0 && t.kind == Tok::Ident &&
                 (t.text == "macro" || t.text == "design")) {
        return;
      }
      take();
    }
  }

  /// Skips to the end of the current statement: past the next ';' at this
  /// nesting level, or up to (not past) the '}' that closes the enclosing
  /// body. Nested braces (case bodies) are skipped whole.
  void sync_statement() {
    int depth = 0;
    while (peek().kind != Tok::End) {
      const Token& t = peek();
      if (t.kind == Tok::LBrace) {
        ++depth;
      } else if (t.kind == Tok::RBrace) {
        if (depth == 0) return;  // let parse_body consume the closer
        --depth;
      } else if (t.kind == Tok::Semi && depth == 0) {
        take();
        return;
      }
      take();
    }
  }

  MacroDef parse_macro() {
    MacroDef m;
    m.line = peek().line;
    m.column = peek().column;
    m.name = expect(Tok::Ident, "macro name").text;
    expect(Tok::LParen, "'('");
    if (peek().kind == Tok::Ident) {
      m.formals.push_back(take().text);
      while (accept(Tok::Comma)) m.formals.push_back(expect(Tok::Ident, "parameter").text);
    }
    expect(Tok::RParen, "')'");
    m.body = parse_body();
    return m;
  }

  // expr := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)* ;
  // factor := NUMBER | IDENT | '-' factor | '(' expr ')'
  ExprPtr parse_expr() {
    ExprPtr e = parse_term();
    while (peek().kind == Tok::Plus || peek().kind == Tok::Minus) {
      bool add = take().kind == Tok::Plus;
      auto n = std::make_unique<Expr>();
      n->op = add ? Expr::Op::Add : Expr::Op::Sub;
      n->lhs = std::move(e);
      n->rhs = parse_term();
      e = std::move(n);
    }
    return e;
  }
  ExprPtr parse_term() {
    ExprPtr e = parse_factor();
    while (peek().kind == Tok::Star || peek().kind == Tok::Slash) {
      bool mul = take().kind == Tok::Star;
      auto n = std::make_unique<Expr>();
      n->op = mul ? Expr::Op::Mul : Expr::Op::Div;
      n->lhs = std::move(e);
      n->rhs = parse_factor();
      e = std::move(n);
    }
    return e;
  }
  ExprPtr parse_factor() {
    auto n = std::make_unique<Expr>();
    if (accept(Tok::Minus)) {
      n->op = Expr::Op::Neg;
      n->lhs = parse_factor();
      return n;
    }
    if (peek().kind == Tok::Number) {
      n->op = Expr::Op::Const;
      n->value = take().number;
      return n;
    }
    if (peek().kind == Tok::Ident) {
      n->op = Expr::Op::Param;
      n->param = take().text;
      return n;
    }
    if (accept(Tok::LParen)) {
      ExprPtr inner = parse_expr();
      expect(Tok::RParen, "')'");
      return inner;
    }
    fail(peek().line, peek().column, diag::kErrExpectedToken, "expected an expression");
  }

  double signed_number(const char* what) {
    bool neg = accept(Tok::Minus);
    double v = expect(Tok::Number, what).number;
    return neg ? -v : v;
  }

  std::vector<Attr> parse_attrs() {
    std::vector<Attr> attrs;
    if (!accept(Tok::LBracket)) return attrs;
    if (accept(Tok::RBracket)) return attrs;  // "[]": no attributes
    do {
      Attr a;
      a.line = peek().line;
      a.column = peek().column;
      a.name = expect(Tok::Ident, "attribute name").text;
      expect(Tok::Equal, "'='");
      a.lo = parse_expr();
      if (accept(Tok::Colon)) a.hi = parse_expr();
      attrs.push_back(std::move(a));
    } while (accept(Tok::Comma));
    expect(Tok::RBracket, "']'");
    return attrs;
  }

  std::vector<std::string> parse_pins() {
    std::vector<std::string> pins;
    expect(Tok::LParen, "'('");
    if (peek().kind == Tok::String) {
      pins.push_back(take().text);
      while (accept(Tok::Comma)) pins.push_back(expect(Tok::String, "signal string").text);
    }
    expect(Tok::RParen, "')'");
    return pins;
  }

  Body parse_body() {
    Body b;
    b.line = peek().line;
    expect(Tok::LBrace, "'{'");
    while (!accept(Tok::RBrace)) {
      if (diags_) {
        if (peek().kind == Tok::End) {
          // Unterminated body: report once and stop (End never syncs away).
          fail(peek().line, peek().column, diag::kErrExpectedToken,
               "expected a statement or '}', got end of input");
        }
        try {
          parse_statement(b);
        } catch (const ParseBail&) {
          if (diags_->error_limit_reached()) throw ParseAbort{};
          sync_statement();
        }
      } else {
        parse_statement(b);
      }
    }
    return b;
  }

  void parse_statement(Body& b) {
    const Token& t = expect(Tok::Ident, "statement");
    if (t.text == "period") {
      b.period_line = t.line;
      b.period_column = t.column;
      b.period_ns = expect(Tok::Number, "period in ns").number;
      expect(Tok::Semi, "';'");
    } else if (t.text == "clock_unit") {
      b.clock_unit_ns = expect(Tok::Number, "clock unit in ns").number;
      expect(Tok::Semi, "';'");
    } else if (t.text == "default_wire") {
      b.wire_min_ns = expect(Tok::Number, "min wire delay").number;
      expect(Tok::Colon, "':'");
      b.wire_max_ns = expect(Tok::Number, "max wire delay").number;
      expect(Tok::Semi, "';'");
    } else if (t.text == "precision_skew" || t.text == "clock_skew") {
      double* dst = t.text == "precision_skew" ? b.precision_skew : b.clock_skew;
      dst[0] = signed_number("skew minus");
      expect(Tok::Colon, "':'");
      dst[1] = signed_number("skew plus");
      expect(Tok::Semi, "';'");
    } else if (t.text == "param") {
      ParamDecl d;
      const Token& dir = expect(Tok::Ident, "'in' or 'out'");
      if (dir.text == "out") {
        d.is_output = true;
      } else if (dir.text != "in") {
        fail(dir.line, dir.column, diag::kErrExpectedToken, "expected 'in' or 'out'");
      }
      d.names.push_back(expect(Tok::String, "parameter signal").text);
      while (accept(Tok::Comma)) {
        d.names.push_back(expect(Tok::String, "parameter signal").text);
      }
      expect(Tok::Semi, "';'");
      b.params.push_back(std::move(d));
    } else if (t.text == "synonym") {
      SynonymDecl d;
      d.line = t.line;
      d.column = t.column;
      d.a = expect(Tok::String, "signal string").text;
      expect(Tok::Equal, "'='");
      d.b = expect(Tok::String, "signal string").text;
      expect(Tok::Semi, "';'");
      b.synonyms.push_back(std::move(d));
    } else if (t.text == "wire_delay") {
      WireDelayDecl d;
      d.line = t.line;
      d.column = t.column;
      d.signal = expect(Tok::String, "signal string").text;
      d.dmin = parse_expr();
      expect(Tok::Colon, "':'");
      d.dmax = parse_expr();
      expect(Tok::Semi, "';'");
      b.wire_delays.push_back(std::move(d));
    } else if (t.text == "case") {
      CaseDecl c;
      c.line = t.line;
      c.column = t.column;
      c.name = expect(Tok::String, "case name").text;
      expect(Tok::LBrace, "'{'");
      while (!accept(Tok::RBrace)) {
        std::string sig = expect(Tok::String, "signal string").text;
        expect(Tok::Equal, "'='");
        const Token& vt = peek();
        double v = expect(Tok::Number, "0 or 1").number;
        if (v != 0 && v != 1) {
          fail(vt.line, vt.column, diag::kErrBadCaseValue, "case values must be 0 or 1");
        }
        expect(Tok::Semi, "';'");
        c.pins.emplace_back(std::move(sig), static_cast<int>(v));
      }
      b.cases.push_back(std::move(c));
    } else if (t.text == "use") {
      Instance inst;
      inst.is_macro = true;
      inst.line = t.line;
      inst.column = t.column;
      inst.kind = expect(Tok::Ident, "macro name").text;
      inst.attrs = parse_attrs();
      inst.pins = parse_pins();
      expect(Tok::Semi, "';'");
      b.instances.push_back(std::move(inst));
    } else {
      // Primitive instance.
      Instance inst;
      inst.line = t.line;
      inst.column = t.column;
      inst.kind = t.text;
      inst.attrs = parse_attrs();
      inst.pins = parse_pins();
      if (accept(Tok::Arrow)) inst.output = expect(Tok::String, "output signal").text;
      expect(Tok::Semi, "';'");
      b.instances.push_back(std::move(inst));
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  diag::DiagnosticEngine* diags_ = nullptr;
};

}  // namespace

File parse(std::string_view src) { return Parser(lex(src), nullptr).parse_file(); }

File parse(std::string_view src, diag::DiagnosticEngine& diags) {
  return Parser(lex(src, diags), &diags).parse_file();
}

}  // namespace tv::hdl
