#include "sim/logic_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace tv::sim {

char lv_letter(LV v) {
  switch (v) {
    case LV::Zero: return '0';
    case LV::One: return '1';
    case LV::X: return 'X';
    case LV::U: return 'U';
    case LV::D: return 'D';
    case LV::E: return 'E';
  }
  return '?';
}

bool lv_is_definite(LV v) { return v == LV::Zero || v == LV::One; }

LV lv_not(LV a) {
  switch (a) {
    case LV::Zero: return LV::One;
    case LV::One: return LV::Zero;
    case LV::U: return LV::D;
    case LV::D: return LV::U;
    default: return a;
  }
}

LV lv_or(LV a, LV b) {
  if (a == LV::One || b == LV::One) return LV::One;
  if (a == LV::Zero) return b;
  if (b == LV::Zero) return a;
  if (a == b) return a;
  if (a == LV::X || b == LV::X) return LV::X;
  return LV::E;  // mixed edges: potential spike
}

LV lv_and(LV a, LV b) {
  if (a == LV::Zero || b == LV::Zero) return LV::Zero;
  if (a == LV::One) return b;
  if (b == LV::One) return a;
  if (a == b) return a;
  if (a == LV::X || b == LV::X) return LV::X;
  return LV::E;
}

LV lv_xor(LV a, LV b) {
  if (lv_is_definite(a) && lv_is_definite(b)) {
    return (a == b) ? LV::Zero : LV::One;
  }
  if (a == LV::X || b == LV::X) return LV::X;
  if (!lv_is_definite(a) && !lv_is_definite(b)) return LV::E;
  // One definite, one edge: the edge passes (possibly inverted).
  LV edge = lv_is_definite(a) ? b : a;
  LV def = lv_is_definite(a) ? a : b;
  return def == LV::One ? lv_not(edge) : edge;
}

LogicSimulator::LogicSimulator(const Netlist& nl) : nl_(nl) {
  if (!nl.finalized()) throw std::logic_error("netlist must be finalized");
  delays_.resize(nl.num_prims());
  for (PrimId pid = 0; pid < nl.num_prims(); ++pid) {
    const Primitive& p = nl.prim(pid);
    delays_[pid] = p.rise_fall ? *p.rise_fall
                               : RiseFallDelay{p.dmin, p.dmax, p.dmin, p.dmax};
  }
  reset();
}

void LogicSimulator::override_delay(PrimId pid, Time dmin, Time dmax) {
  override_delay(pid, RiseFallDelay{dmin, dmax, dmin, dmax});
}

void LogicSimulator::override_delay(PrimId pid, const RiseFallDelay& rf) {
  delays_[pid] = rf;
}

void LogicSimulator::reset() {
  values_.assign(nl_.num_signals(), LV::X);
  projected_.assign(nl_.num_signals(), LV::X);
  pending_.assign(nl_.num_signals(), {});
  last_change_.assign(nl_.num_signals(), -1);
  last_rise_.assign(nl_.num_signals(), -1);
  last_fall_.assign(nl_.num_signals(), -1);
  reg_state_.assign(nl_.num_prims(), LV::X);
  seen_definite_.assign(nl_.num_signals(), 0);
  prev_pin_.assign(nl_.num_prims(), {LV::X, LV::X});
  while (!queue_.empty()) queue_.pop();
  stats_ = SimStats{};
  violations_.clear();
}

void LogicSimulator::schedule(SignalId sig, Time at, LV v) {
  // Inertial preemption: a newly computed transition supersedes anything
  // previously scheduled for the same signal at the same or a later time.
  // Superseded events stay in the queue and are dropped lazily when popped.
  auto& pend = pending_[sig];
  pend.erase(std::remove_if(pend.begin(), pend.end(),
                            [&](const std::pair<Time, std::uint64_t>& p) {
                              return p.first >= at;
                            }),
             pend.end());
  pend.push_back({at, seq_});
  projected_[sig] = v;  // all remaining pending events precede this one
  queue_.push(Event{at, seq_++, sig, v});
}

LV LogicSimulator::input_value(const Pin& pin) const {
  LV v = values_[pin.sig];
  return pin.invert ? lv_not(v) : v;
}

void LogicSimulator::evaluate_fanout(SignalId sig, Time now) {
  for (PrimId pid : nl_.signal(sig).fanout) evaluate_prim(pid, now);
}

namespace {
LV settle_edge(LV from, LV to) {
  // Intermediate value a min/max-delayed output holds between min and max.
  if (from == LV::Zero && to == LV::One) return LV::U;
  if (from == LV::One && to == LV::Zero) return LV::D;
  if (to == LV::X) return LV::X;
  return LV::E;
}
}  // namespace

void LogicSimulator::evaluate_prim(PrimId pid, Time now) {
  const Primitive& p = nl_.prim(pid);
  ++stats_.gate_evaluations;

  if (prim_is_checker(p.kind)) {
    check_checker(pid, now, violations_);
    return;
  }

  LV target = LV::X;
  switch (p.kind) {
    case PrimKind::Buf:
      target = input_value(p.inputs[0]);
      break;
    case PrimKind::Not:
      target = lv_not(input_value(p.inputs[0]));
      break;
    case PrimKind::Or:
    case PrimKind::And: {
      target = input_value(p.inputs[0]);
      for (std::size_t i = 1; i < p.inputs.size(); ++i) {
        LV v = input_value(p.inputs[i]);
        target = p.kind == PrimKind::Or ? lv_or(target, v) : lv_and(target, v);
      }
      break;
    }
    case PrimKind::Xor:
    case PrimKind::Chg: {
      // A CHG primitive stands for "some combinational function"; in the
      // value-level simulation we must pick a concrete one -- parity, the
      // function the thesis names as the canonical CHG-modeled circuit.
      target = input_value(p.inputs[0]);
      for (std::size_t i = 1; i < p.inputs.size(); ++i) {
        target = lv_xor(target, input_value(p.inputs[i]));
      }
      break;
    }
    case PrimKind::Mux2: {
      LV sel = input_value(p.inputs[0]);
      if (sel == LV::Zero) {
        target = input_value(p.inputs[1]);
      } else if (sel == LV::One) {
        target = input_value(p.inputs[2]);
      } else {
        LV a = input_value(p.inputs[1]), b = input_value(p.inputs[2]);
        target = (a == b && lv_is_definite(a)) ? a : (sel == LV::X ? LV::X : LV::E);
      }
      break;
    }
    case PrimKind::Mux4:
    case PrimKind::Mux8: {
      std::size_t nsel = p.kind == PrimKind::Mux4 ? 2 : 3;
      int idx = 0;
      bool definite = true;
      for (std::size_t s = 0; s < nsel; ++s) {
        LV v = input_value(p.inputs[s]);
        if (!lv_is_definite(v)) {
          definite = false;
          break;
        }
        if (v == LV::One) idx |= (1 << s);
      }
      target = definite ? input_value(p.inputs[nsel + static_cast<std::size_t>(idx)]) : LV::X;
      break;
    }
    case PrimKind::Reg:
    case PrimKind::RegSR: {
      LV ck = input_value(p.inputs[1]);
      LV prev_ck = prev_pin_[pid][1];
      prev_pin_[pid][1] = ck;
      if (prev_ck == LV::Zero && ck == LV::One) {
        reg_state_[pid] = input_value(p.inputs[0]);  // capture on rising edge
      }
      // Asynchronous SET/RESET dominate a clocked capture while active.
      if (p.kind == PrimKind::RegSR) {
        LV s = input_value(p.inputs[2]), r = input_value(p.inputs[3]);
        if (s == LV::One && r == LV::One) {
          reg_state_[pid] = LV::X;
        } else if (s == LV::One) {
          reg_state_[pid] = LV::One;
        } else if (r == LV::One) {
          reg_state_[pid] = LV::Zero;
        }
      }
      target = reg_state_[pid];
      break;
    }
    case PrimKind::Latch:
    case PrimKind::LatchSR: {
      LV en = input_value(p.inputs[1]);
      if (en == LV::One) reg_state_[pid] = input_value(p.inputs[0]);
      target = en == LV::One ? input_value(p.inputs[0]) : reg_state_[pid];
      // Asynchronous SET/RESET dominate the transparent path while active.
      if (p.kind == PrimKind::LatchSR) {
        LV s = input_value(p.inputs[2]), r = input_value(p.inputs[3]);
        if (s == LV::One && r == LV::One) {
          reg_state_[pid] = LV::X;
        } else if (s == LV::One) {
          reg_state_[pid] = LV::One;
        } else if (r == LV::One) {
          reg_state_[pid] = LV::Zero;
        }
        if (s == LV::One || r == LV::One) target = reg_state_[pid];
      }
      break;
    }
    default:
      return;
  }

  // Compare against the value the output is already headed to, not its
  // momentary value: an opposite transition may still be in flight, and
  // comparing against values_ would drop the new one (e.g. a gated clock's
  // fall computed while its rise event is pending would never fire, leaving
  // the gate output stuck high).
  LV current = projected_[p.output];
  if (target == current) return;
  // Delay range by output polarity: changes toward 1 use the rise range,
  // toward 0 the fall range, anything else the combined worst case.
  const RiseFallDelay& d = delays_[pid];
  Time lo, hi;
  if (target == LV::One || target == LV::U) {
    lo = d.rise_min;
    hi = d.rise_max;
  } else if (target == LV::Zero || target == LV::D) {
    lo = d.fall_min;
    hi = d.fall_max;
  } else {
    lo = std::min(d.rise_min, d.fall_min);
    hi = std::max(d.rise_max, d.fall_max);
  }
  if (hi > lo) {
    schedule(p.output, now + lo, settle_edge(current, target));
    schedule(p.output, now + hi, target);
  } else {
    schedule(p.output, now + hi, target);
  }
}

void LogicSimulator::check_checker(PrimId pid, Time now, std::vector<SimViolation>& out) {
  const Primitive& p = nl_.prim(pid);
  char buf[200];

  if (p.kind == PrimKind::MinPulseWidthChk) {
    SignalId sig = p.inputs[0].sig;
    LV v = input_value(p.inputs[0]);
    LV prev = prev_pin_[pid][0];
    prev_pin_[pid][0] = v;
    if (prev == LV::One && v == LV::Zero && p.min_high > 0 && last_rise_[sig] >= 0 &&
        now - last_rise_[sig] < p.min_high) {
      std::snprintf(buf, sizeof buf, "%s: high pulse of %s < %s", p.name.c_str(),
                    format_ns(now - last_rise_[sig]).c_str(), format_ns(p.min_high).c_str());
      out.push_back(SimViolation{pid, now, buf});
    }
    if (prev == LV::Zero && v == LV::One && p.min_low > 0 && last_fall_[sig] >= 0 &&
        now - last_fall_[sig] < p.min_low) {
      std::snprintf(buf, sizeof buf, "%s: low pulse of %s < %s", p.name.c_str(),
                    format_ns(now - last_fall_[sig]).c_str(), format_ns(p.min_low).c_str());
      out.push_back(SimViolation{pid, now, buf});
    }
    return;
  }

  // Set-up/hold monitors: pin 0 is the data, pin 1 the clock.
  LV ck = input_value(p.inputs[1]);
  LV prev_ck = prev_pin_[pid][1];
  prev_pin_[pid][1] = ck;
  LV data = input_value(p.inputs[0]);
  LV prev_data = prev_pin_[pid][0];
  prev_pin_[pid][0] = data;

  SignalId dsig = p.inputs[0].sig;
  // With min != max delays an edge passes through U, so "rising" means
  // reaching 1 from 0 or from a rising-uncertainty value; anything arriving
  // out of X/E is initialization or spike settling, not a clean edge.
  bool rising = ck == LV::One && (prev_ck == LV::Zero || prev_ck == LV::U);

  if (rising && p.setup > 0 && last_change_[dsig] >= 0 && now - last_change_[dsig] < p.setup) {
    std::snprintf(buf, sizeof buf, "%s: setup %s available < %s required", p.name.c_str(),
                  format_ns(now - last_change_[dsig]).c_str(), format_ns(p.setup).c_str());
    out.push_back(SimViolation{pid, now, buf});
  }
  if (rising && !lv_is_definite(data)) {
    std::snprintf(buf, sizeof buf, "%s: data %c at clock edge", p.name.c_str(),
                  lv_letter(data));
    out.push_back(SimViolation{pid, now, buf});
  }
  if (data != prev_data && p.hold > 0) {
    Time edge = p.kind == PrimKind::SetupRiseHoldFallChk ? last_fall_[p.inputs[1].sig]
                                                         : last_rise_[p.inputs[1].sig];
    if (p.inputs[1].invert) {
      edge = p.kind == PrimKind::SetupRiseHoldFallChk ? last_rise_[p.inputs[1].sig]
                                                      : last_fall_[p.inputs[1].sig];
    }
    if (edge >= 0 && now - edge < p.hold) {
      std::snprintf(buf, sizeof buf, "%s: hold %s available < %s required", p.name.c_str(),
                    format_ns(now - edge).c_str(), format_ns(p.hold).c_str());
      out.push_back(SimViolation{pid, now, buf});
    }
  }
  if (p.kind == PrimKind::SetupRiseHoldFallChk && ck == LV::One && data != prev_data) {
    std::snprintf(buf, sizeof buf, "%s: input moved while clock true", p.name.c_str());
    out.push_back(SimViolation{pid, now, buf});
  }
}

std::vector<SimViolation> LogicSimulator::run(const std::vector<Stimulus>& stimuli,
                                              Time until) {
  for (const Stimulus& s : stimuli) schedule(s.signal, s.at, s.value);
  violations_.clear();

  while (!queue_.empty() && queue_.top().at <= until) {
    Event e = queue_.top();
    queue_.pop();
    auto& pend = pending_[e.signal];
    auto it = std::find(pend.begin(), pend.end(), std::make_pair(e.at, e.seq));
    if (it == pend.end()) continue;  // inertially preempted
    pend.erase(it);
    if (values_[e.signal] == e.value) continue;
    LV prev = values_[e.signal];
    values_[e.signal] = e.value;
    last_change_[e.signal] = e.at;
    // Initialization settling (X -> first definite value) is not an edge:
    // rises/falls are recorded only once the signal has been definite.
    bool armed = seen_definite_[e.signal] != 0;
    if (armed && prev != LV::One && e.value == LV::One) last_rise_[e.signal] = e.at;
    if (armed && prev != LV::Zero && e.value == LV::Zero) last_fall_[e.signal] = e.at;
    if (lv_is_definite(e.value)) seen_definite_[e.signal] = 1;
    ++stats_.events_processed;
    stats_.simulated_time = e.at;
    evaluate_fanout(e.signal, e.at);
  }
  return violations_;
}

std::vector<Stimulus> periodic_clock(SignalId sig, Time period, Time rise, Time fall,
                                     int cycles) {
  std::vector<Stimulus> out;
  out.push_back(Stimulus{sig, 0, LV::Zero});
  for (int c = 0; c < cycles; ++c) {
    Time base = static_cast<Time>(c) * period;
    out.push_back(Stimulus{sig, base + rise, LV::One});
    out.push_back(Stimulus{sig, base + fall, LV::Zero});
  }
  return out;
}

}  // namespace tv::sim
