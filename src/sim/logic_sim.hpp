// Baseline 1: a minimum/maximum-based gate-level logic simulator in the
// style of TEGAS/SAGE/LAMP (thesis sec. 1.4.1.1).
//
// This is the approach the Timing Verifier replaces. It simulates a circuit
// over *many* clock cycles driven by explicit input vectors, using a
// six-value logic:
//
//   0, 1   definite levels
//   X      initialization value
//   U      signal rising (within its min/max delay window)
//   D      signal falling
//   E      potential spike / hazard / race
//
// Timing ranges are modeled by scheduling a gate's output to an uncertainty
// value (U/D/E) at input-change + min delay and to its settled value at
// input-change + max delay. Detecting a timing error requires driving the
// exact input pattern that exercises the offending path -- the thesis'
// central criticism: "unless all possible cases which have distinct timing
// paths for a design can be simulated, there is no guarantee that it does
// not contain undetected timing errors."
//
// The simulator shares the Netlist structure with the Timing Verifier so
// that the same circuit can be fed to both in benchmarks; checker
// primitives are honored as runtime monitors (set-up/hold violations are
// detected only when an input pattern actually exposes them).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "core/netlist.hpp"

namespace tv::sim {

enum class LV : std::uint8_t { Zero, One, X, U, D, E };

char lv_letter(LV v);
LV lv_not(LV a);
LV lv_or(LV a, LV b);
LV lv_and(LV a, LV b);
LV lv_xor(LV a, LV b);
bool lv_is_definite(LV v);

/// A scheduled input transition: signal -> value at an absolute time.
struct Stimulus {
  SignalId signal = kNoSignal;
  Time at = 0;
  LV value = LV::X;
};

/// A set-up/hold/min-pulse violation observed during simulation.
struct SimViolation {
  PrimId checker = kNoPrim;
  Time at = 0;
  std::string message;
};

struct SimStats {
  std::size_t events_processed = 0;   // scheduled value changes applied
  std::size_t gate_evaluations = 0;
  Time simulated_time = 0;
};

class LogicSimulator {
 public:
  /// The netlist must be finalized. Latches/registers are simulated
  /// behaviorally; CHG primitives behave as X-generators when inputs move
  /// (their boolean function is unknown to the model, as in the thesis).
  explicit LogicSimulator(const Netlist& nl);

  /// Resets all signals to X and clears the event queue. Delay overrides
  /// (see override_delay) survive a reset so one configured simulator can be
  /// reused across input patterns.
  void reset();

  /// Pins a primitive's propagation delay to concrete values for subsequent
  /// runs. The differential harness uses this to sample one *realization*
  /// of the modeled [dmin, dmax] interval: reality takes a single delay in
  /// the range, and every such reality must be covered by the symbolic
  /// verifier. Per-polarity form for rise/fall-modeled primitives.
  void override_delay(PrimId pid, Time dmin, Time dmax);
  void override_delay(PrimId pid, const RiseFallDelay& rf);

  /// Schedules stimuli and runs until the queue drains or `until` is
  /// reached. Returns observed violations.
  std::vector<SimViolation> run(const std::vector<Stimulus>& stimuli, Time until);

  LV value(SignalId id) const { return values_[id]; }
  const SimStats& stats() const { return stats_; }

 private:
  struct Event {
    Time at = 0;
    std::uint64_t seq = 0;  // FIFO tie-break
    SignalId signal = kNoSignal;
    LV value = LV::X;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  void schedule(SignalId sig, Time at, LV v);
  void evaluate_fanout(SignalId sig, Time now);
  void evaluate_prim(PrimId pid, Time now);
  LV input_value(const Pin& pin) const;
  void check_checker(PrimId pid, Time now, std::vector<SimViolation>& out);

  const Netlist& nl_;
  /// Effective propagation delays per primitive: seeded from the netlist
  /// (the rise/fall ranges when modeled, [dmin, dmax] for both polarities
  /// otherwise), possibly pinned by override_delay.
  std::vector<RiseFallDelay> delays_;
  std::vector<LV> values_;
  /// Per signal: the value the signal is headed to once its pending events
  /// fire (equal to values_ when nothing is pending). Gate evaluation must
  /// compare its target against this, not the momentary value -- otherwise a
  /// transition computed while an opposite transition is still in flight is
  /// dropped and the output sticks.
  std::vector<LV> projected_;
  /// Per signal: (time, seq) of live scheduled events. Scheduling a
  /// transition preempts (inertially cancels) anything previously scheduled
  /// at the same or a later time; the queue uses lazy deletion against this
  /// list.
  std::vector<std::vector<std::pair<Time, std::uint64_t>>> pending_;
  std::vector<Time> last_change_;             // per signal: last definite change
  std::vector<Time> last_rise_, last_fall_;   // per signal: last 0->1 / 1->0
  std::vector<char> seen_definite_;           // per signal: has been 0/1 at least once
  std::vector<LV> reg_state_;                 // per primitive: stored bit
  std::vector<std::array<LV, 2>> prev_pin_;   // per primitive: last data/clock seen
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t seq_ = 0;
  SimStats stats_;
  std::vector<SimViolation> violations_;
};

/// Convenience: builds the periodic clock/data stimuli for `cycles` cycles
/// of a clock signal high during [rise, fall) each period.
std::vector<Stimulus> periodic_clock(SignalId sig, Time period, Time rise, Time fall,
                                     int cycles);

}  // namespace tv::sim
