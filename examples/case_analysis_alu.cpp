// Case analysis on a variable-path ALU bypass (sec. 2.7): a result bus is
// either taken from a fast bypass or from a slow ALU, selected by
// complementary enables. Analyzed symbolically the verifier sees the
// impossible slow+slow combination and reports a set-up error; analyzed
// with the designer's case file ("BYPASS = 0;" / "BYPASS = 1;") every real
// configuration meets timing. This is the design style the thesis says
// *needs* case analysis ("for some design styles, e.g. those in which
// variable length cycles are used, case analysis is essential").
//
//   $ ./case_analysis_alu
#include <cstdio>

#include "core/verifier.hpp"

int main() {
  using namespace tv;

  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(60.0);
  opts.units = ClockUnits::from_ns_per_unit(10.0);
  opts.default_wire = WireDelay{0, 0};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  Ref operands = nl.ref("OPERANDS .S1-5", 16);  // stable 10..50 ns

  // Slow ALU path (25-32 ns) vs fast bypass (2-4 ns), two stages of it.
  Ref bypass = nl.ref("BYPASS");
  Ref alu1 = nl.ref("ALU1 OUT", 16);
  nl.chg("ALU1", from_ns(25.0), from_ns(32.0), {operands}, alu1, 16);
  Ref fast1 = nl.ref("BYP1 OUT", 16);
  nl.buf("BYP1", from_ns(2.0), from_ns(4.0), operands, fast1, 16);
  Ref stage1 = nl.ref("STAGE1", 16);
  nl.mux2("SEL1", from_ns(1.0), from_ns(2.0), bypass, alu1, fast1, stage1, 16);

  Ref alu2 = nl.ref("ALU2 OUT", 16);
  nl.chg("ALU2", from_ns(25.0), from_ns(32.0), {stage1}, alu2, 16);
  Ref fast2 = nl.ref("BYP2 OUT", 16);
  nl.buf("BYP2", from_ns(2.0), from_ns(4.0), stage1, fast2, 16);
  Ref result = nl.ref("RESULT", 16);
  // Complementary select: when stage 1 used the ALU, stage 2 must bypass
  // (select high -> fast path, i.e. whenever BYPASS is low).
  nl.mux2("SEL2", from_ns(1.0), from_ns(2.0), nl.ref("- BYPASS"), alu2, fast2, result, 16);

  Ref ck = nl.ref("CAPTURE CLK .P5.7-6");
  nl.reg("RESULT REG", from_ns(1.0), from_ns(2.0), result, ck, nl.ref("RESULT Q", 16), 16);
  nl.setup_hold_chk("RESULT CHK", from_ns(2.0), from_ns(1.0), result, ck, 16);
  nl.finalize();

  Verifier verifier(nl, opts);

  // Symbolic run: BYPASS is merely STABLE, so the worst case stacks both
  // 32 ns ALU delays -- an impossible 74 ns path in a 60 ns cycle.
  VerifyResult symbolic = verifier.verify();
  std::printf("--- symbolic analysis (no case file) --------------------------\n");
  std::printf("%s\n", violations_report(symbolic.violations).c_str());

  // Case analysis: the designer declares the two operating modes.
  std::vector<CaseSpec> cases = {
      {"BYPASS = 0", {{bypass.id, Value::Zero}}},
      {"BYPASS = 1", {{bypass.id, Value::One}}},
  };
  VerifyResult with_cases = verifier.verify(cases);
  std::printf("--- with case analysis ----------------------------------------\n");
  std::size_t case_errors = 0;
  for (const auto& c : with_cases.cases) {
    std::printf("case \"%s\": %zu violation(s), %zu incremental events\n", c.name.c_str(),
                c.violations.size(), c.events);
    case_errors += c.violations.size();
  }
  std::printf("\nsymbolic errors: %zu (pessimistic), per-case errors: %zu (true timing)\n",
              symbolic.violations.size(), case_errors);
  return (!symbolic.violations.empty() && case_errors == 0) ? 0 : 1;
}
