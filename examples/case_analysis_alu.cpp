// Case analysis on a variable-path ALU bypass (sec. 2.7): a result bus is
// either taken from a fast bypass or from a slow ALU, selected by
// complementary enables. Analyzed symbolically the verifier sees the
// impossible slow+slow combination and reports a set-up error; analyzed
// with the designer's case file ("BYPASS = 0;" / "BYPASS = 1;") every real
// configuration meets timing. This is the design style the thesis says
// *needs* case analysis ("for some design styles, e.g. those in which
// variable length cycles are used, case analysis is essential"). The
// circuit and its case file are built by example_designs.cpp.
//
//   $ ./case_analysis_alu
#include <cstdio>

#include "core/verifier.hpp"
#include "example_designs.hpp"

int main() {
  using namespace tv;

  examples::ExampleDesign d = examples::case_analysis_alu();
  Verifier verifier(*d.netlist, d.options);

  // Symbolic run: BYPASS is merely STABLE, so the worst case stacks both
  // 32 ns ALU delays -- an impossible 74 ns path in a 60 ns cycle.
  VerifyResult symbolic = verifier.verify();
  std::printf("--- symbolic analysis (no case file) --------------------------\n");
  std::printf("%s\n", violations_report(symbolic.violations).c_str());

  // Case analysis: the designer declares the two operating modes.
  VerifyResult with_cases = verifier.verify(d.cases);
  std::printf("--- with case analysis ----------------------------------------\n");
  std::size_t case_errors = 0;
  for (const auto& c : with_cases.cases) {
    std::printf("case \"%s\": %zu violation(s), %zu incremental events\n", c.name.c_str(),
                c.violations.size(), c.events);
    case_errors += c.violations.size();
  }
  std::printf("\nsymbolic errors: %zu (pessimistic), per-case errors: %zu (true timing)\n",
              symbolic.violations.size(), case_errors);
  return (!symbolic.violations.empty() && case_errors == 0) ? 0 : 1;
}
