// Section-by-section verification (sec. 2.5.2): two designers work on two
// sections that meet at an asserted interface bus. Each section is
// verified on its own; SCALD-style interface checking then establishes the
// whole-design guarantee: "If no section ... has a timing error and if all
// of the interface signals ... have consistent assertions on them, then the
// entire design must be free of timing errors." The section netlists are
// built by example_designs.cpp, shared with the golden-report suite.
//
//   $ ./modular_verification
#include <cstdio>

#include "core/modular.hpp"
#include "example_designs.hpp"

int main() {
  using namespace tv;

  VerifierOptions opts = examples::modular_options();
  examples::ExampleDesign execute = examples::modular_execute();
  examples::ExampleDesign writeback = examples::modular_writeback();

  std::vector<Section> sections = {{"EXECUTE", execute.netlist.get(), {}},
                                   {"WRITEBACK", writeback.netlist.get(), {}}};
  ModularResult r = verify_modular(sections, opts);

  for (const auto& sec : r.sections) {
    std::printf("section %-10s: %zu violation(s), %zu events\n", sec.name.c_str(),
                sec.result.total_violations(), sec.result.base_events);
    for (const auto& v : sec.result.violations) std::printf("%s", v.message.c_str());
  }
  std::printf("interface issues: %zu\n", r.interface_issues.size());
  for (const auto& i : r.interface_issues) {
    std::printf("  [%s] %s: %s\n",
                i.kind == InterfaceIssue::Kind::AssertionMismatch ? "mismatch"
                : i.kind == InterfaceIssue::Kind::MissingAssertion ? "missing"
                                                                   : "multi-driver",
                i.base_name.c_str(), i.detail.c_str());
  }
  std::printf("\nwhole design free of timing errors: %s\n",
              r.design_free_of_timing_errors() ? "YES" : "NO");

  // Now demonstrate what happens when designer B assumes a *different*
  // assertion: the interface check catches it even though both sections
  // are individually clean.
  examples::ExampleDesign writeback2 = examples::modular_writeback_mismatched();
  std::vector<Section> bad = {{"EXECUTE", execute.netlist.get(), {}},
                              {"WRITEBACK-v2", writeback2.netlist.get(), {}}};
  ModularResult r2 = verify_modular(bad, opts);
  std::printf("\nwith a mismatched consumer assertion: %zu interface issue(s):\n",
              r2.interface_issues.size());
  for (const auto& i : r2.interface_issues) std::printf("  %s\n", i.detail.c_str());
  return (r.design_free_of_timing_errors() && !r2.interface_issues.empty()) ? 0 : 1;
}
