// Section-by-section verification (sec. 2.5.2): two designers work on two
// sections that meet at an asserted interface bus. Each section is
// verified on its own; SCALD-style interface checking then establishes the
// whole-design guarantee: "If no section ... has a timing error and if all
// of the interface signals ... have consistent assertions on them, then the
// entire design must be free of timing errors."
//
//   $ ./modular_verification
#include <cstdio>

#include "core/modular.hpp"

int main() {
  using namespace tv;

  VerifierOptions opts;
  opts.period = from_ns(50.0);
  opts.units = ClockUnits::from_ns_per_unit(6.25);
  opts.default_wire = WireDelay{0, from_ns(1.0)};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  // Designer A: the execute unit. Produces "EX RESULT<0:15> .S4-9" --
  // the assertion promises stability from unit 4 through unit 1 of the
  // next cycle.
  Netlist execute;
  {
    Ref ck = execute.ref("EX CLK .P2-3");
    Ref operands = execute.ref("EX OPS<0:15> .S0-6", 16);
    Ref latched = execute.ref("EX LATCHED /M", 16);
    execute.reg("EX REG", from_ns(1.0), from_ns(3.0), operands, ck, latched, 16);
    Ref alu = execute.ref("EX ALU OUT /M", 16);
    execute.chg("EX ALU", from_ns(2.0), from_ns(5.0), {latched}, alu, 16);
    execute.buf("EX DRV", from_ns(0.5), from_ns(1.5), alu,
                execute.ref("EX RESULT<0:15> .S4-9", 16), 16);
  }

  // Designer B: the writeback unit. Consumes the bus under the *same*
  // assertion and checks set-up into its own register.
  Netlist writeback;
  {
    Ref bus = writeback.ref("EX RESULT<0:15> .S4-9", 16);
    Ref ck = writeback.ref("WB CLK .P7-8");
    writeback.reg("WB REG", from_ns(1.0), from_ns(3.0), bus, ck,
                  writeback.ref("WB OUT<0:15>", 16), 16);
    writeback.setup_hold_chk("WB CHK", from_ns(2.0), from_ns(1.0), bus, ck, 16);
  }

  std::vector<Section> sections = {{"EXECUTE", &execute, {}}, {"WRITEBACK", &writeback, {}}};
  ModularResult r = verify_modular(sections, opts);

  for (const auto& sec : r.sections) {
    std::printf("section %-10s: %zu violation(s), %zu events\n", sec.name.c_str(),
                sec.result.total_violations(), sec.result.base_events);
    for (const auto& v : sec.result.violations) std::printf("%s", v.message.c_str());
  }
  std::printf("interface issues: %zu\n", r.interface_issues.size());
  for (const auto& i : r.interface_issues) {
    std::printf("  [%s] %s: %s\n",
                i.kind == InterfaceIssue::Kind::AssertionMismatch ? "mismatch"
                : i.kind == InterfaceIssue::Kind::MissingAssertion ? "missing"
                                                                   : "multi-driver",
                i.base_name.c_str(), i.detail.c_str());
  }
  std::printf("\nwhole design free of timing errors: %s\n",
              r.design_free_of_timing_errors() ? "YES" : "NO");

  // Now demonstrate what happens when designer B assumes a *different*
  // assertion: the interface check catches it even though both sections
  // are individually clean.
  Netlist writeback2;
  {
    Ref bus = writeback2.ref("EX RESULT<0:15> .S3-9", 16);  // assumes more!
    Ref ck = writeback2.ref("WB CLK .P7-8");
    writeback2.reg("WB REG", from_ns(1.0), from_ns(3.0), bus, ck,
                   writeback2.ref("WB OUT<0:15>", 16), 16);
  }
  std::vector<Section> bad = {{"EXECUTE", &execute, {}}, {"WRITEBACK-v2", &writeback2, {}}};
  ModularResult r2 = verify_modular(bad, opts);
  std::printf("\nwith a mismatched consumer assertion: %zu interface issue(s):\n",
              r2.interface_issues.size());
  for (const auto& i : r2.interface_issues) std::printf("  %s\n", i.detail.c_str());
  return (r.design_free_of_timing_errors() && !r2.interface_issues.empty()) ? 0 : 1;
}
