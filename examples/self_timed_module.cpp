// Self-timed module delay determination (thesis sec. 4.2.1): in a
// self-timed design every module signals its own completion; "the
// verification technique developed here could be used to determine the
// delay of the basic modules, to determine how much of a delay needs to be
// inserted in the circuit which specifies when the module is 'done'".
//
// This example runs the verifier on a combinational module (an ALU-like
// CHG network), reads off the settle time of its outputs, sizes the "done"
// delay line accordingly, and then *re-verifies* that the done signal
// always trails data validity.
//
//   $ ./self_timed_module
#include <cstdio>

#include "core/verifier.hpp"

int main() {
  using namespace tv;

  VerifierOptions opts;
  opts.period = from_ns(100.0);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = WireDelay{0, from_ns(1.0)};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  // --- step 1: measure the module with the Timing Verifier ---------------
  Netlist module;
  Ref req = module.ref("REQ .P10-60");  // the request strobe launches inputs
  Ref a = module.ref("IN A", 16);
  Ref b = module.ref("IN B", 16);
  module.reg("IN REG A", from_ns(1.0), from_ns(2.5), module.ref("RAW A .S0-9", 16), req, a, 16);
  module.reg("IN REG B", from_ns(1.0), from_ns(2.5), module.ref("RAW B .S0-9", 16), req, b, 16);
  Ref sum = module.ref("SUM", 16);
  module.chg("ADDER", from_ns(6.0), from_ns(14.0), {a, b}, sum, 16);
  Ref result = module.ref("RESULT", 17);
  module.chg("NORMALIZE", from_ns(3.0), from_ns(8.0), {sum}, result, 17);
  module.finalize();

  Verifier v(module, opts);
  v.verify();
  const Waveform& out = module.signal(result.id).wave.with_skew_incorporated();

  // When does RESULT settle after the 10 ns request edge?
  Time settle = 0;
  bool ok = out.settles(from_ns(10), from_ns(90), settle);
  double module_delay_ns = to_ns(settle) - 10.0;
  std::printf("module output settles %.1f ns after the request edge\n", module_delay_ns);
  if (!ok) return 1;

  // --- step 2: size the done-delay line with margin -----------------------
  double done_delay_ns = module_delay_ns + 2.0;  // 2 ns engineering margin
  std::printf("sizing the DONE delay line at %.1f ns\n\n", done_delay_ns);

  // --- step 3: re-verify that DONE always trails data validity -----------
  // DONE is the request delayed by the sized line; the handshake contract
  // is that data is stable when DONE rises (1 ns set-up margin) and stays
  // stable while the consumer reads it (20 ns hold).
  Netlist timed;
  Ref req2 = timed.ref("REQ .P10-60");
  Ref a2 = timed.ref("IN A", 16);
  Ref b2 = timed.ref("IN B", 16);
  timed.reg("IN REG A", from_ns(1.0), from_ns(2.5), timed.ref("RAW A .S0-9", 16), req2, a2, 16);
  timed.reg("IN REG B", from_ns(1.0), from_ns(2.5), timed.ref("RAW B .S0-9", 16), req2, b2, 16);
  Ref sum2 = timed.ref("SUM", 16);
  timed.chg("ADDER", from_ns(6.0), from_ns(14.0), {a2, b2}, sum2, 16);
  Ref result2 = timed.ref("RESULT", 17);
  timed.chg("NORMALIZE", from_ns(3.0), from_ns(8.0), {sum2}, result2, 17);
  Ref done = timed.ref("DONE");
  timed.buf("DONE DELAY", from_ns(done_delay_ns), from_ns(done_delay_ns), req2, done);
  timed.set_wire_delay(done.id, 0, 0);
  timed.setup_hold_chk("HANDSHAKE CHK", from_ns(1.0), from_ns(20.0), result2, done, 17);
  timed.finalize();

  Verifier v2(timed, opts);
  VerifyResult r = v2.verify();
  std::printf("%s", violations_report(r.violations).c_str());
  std::printf("\nDONE trails data with margin: %s\n",
              r.violations.empty() ? "VERIFIED" : "VIOLATED");

  // Cross-check: an undersized delay line must fail.
  Netlist bad;
  Ref req3 = bad.ref("REQ .P10-60");
  Ref a3 = bad.ref("IN A", 16);
  bad.reg("IN REG A", from_ns(1.0), from_ns(2.5), bad.ref("RAW A .S0-9", 16), req3, a3, 16);
  Ref sum3 = bad.ref("SUM", 16);
  bad.chg("ADDER", from_ns(6.0), from_ns(14.0), {a3}, sum3, 16);
  Ref done3 = bad.ref("DONE");
  bad.buf("DONE DELAY", from_ns(5.0), from_ns(5.0), req3, done3);  // too fast!
  bad.set_wire_delay(done3.id, 0, 0);
  bad.setup_hold_chk("HANDSHAKE CHK", from_ns(1.0), from_ns(20.0), sum3, done3, 16);
  bad.finalize();
  Verifier v3(bad, opts);
  VerifyResult r3 = v3.verify();
  std::printf("undersized delay line flagged: %s\n", r3.violations.empty() ? "NO" : "YES");

  return (r.violations.empty() && !r3.violations.empty()) ? 0 : 1;
}
