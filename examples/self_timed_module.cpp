// Self-timed module delay determination (thesis sec. 4.2.1): in a
// self-timed design every module signals its own completion; "the
// verification technique developed here could be used to determine the
// delay of the basic modules, to determine how much of a delay needs to be
// inserted in the circuit which specifies when the module is 'done'".
//
// This example runs the verifier on a combinational module (an ALU-like
// CHG network), reads off the settle time of its outputs, sizes the "done"
// delay line accordingly, and then *re-verifies* that the done signal
// always trails data validity. The circuits are built by
// example_designs.cpp, shared with the golden-report suite.
//
//   $ ./self_timed_module
#include <cstdio>

#include "core/verifier.hpp"
#include "example_designs.hpp"

int main() {
  using namespace tv;

  // --- step 1: measure the module with the Timing Verifier ---------------
  double module_delay_ns = examples::self_timed_module_delay_ns();
  std::printf("module output settles %.1f ns after the request edge\n", module_delay_ns);
  if (module_delay_ns <= 0) return 1;

  // --- step 2: size the done-delay line with margin -----------------------
  std::printf("sizing the DONE delay line at %.1f ns\n\n", module_delay_ns + 2.0);

  // --- step 3: re-verify that DONE always trails data validity -----------
  // DONE is the request delayed by the sized line; the handshake contract
  // is that data is stable when DONE rises (1 ns set-up margin) and stays
  // stable while the consumer reads it (20 ns hold).
  examples::ExampleDesign timed = examples::self_timed_timed();
  Verifier v2(*timed.netlist, timed.options);
  VerifyResult r = v2.verify();
  std::printf("%s", violations_report(r.violations).c_str());
  std::printf("\nDONE trails data with margin: %s\n",
              r.violations.empty() ? "VERIFIED" : "VIOLATED");

  // Cross-check: an undersized delay line must fail.
  examples::ExampleDesign bad = examples::self_timed_undersized();
  Verifier v3(*bad.netlist, bad.options);
  VerifyResult r3 = v3.verify();
  std::printf("undersized delay line flagged: %s\n", r3.violations.empty() ? "NO" : "YES");

  return (r.violations.empty() && !r3.violations.empty()) ? 0 : 1;
}
