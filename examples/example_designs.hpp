// Shared builders for every example design, so the runnable demos and the
// golden-report regression suite (tests/test_golden_reports.cpp) verify the
// exact same circuits. Each builder returns a self-contained unit: the
// finalized netlist, the verifier options, and any case specifications.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/verifier.hpp"

namespace tv::examples {

struct ExampleDesign {
  std::string name;
  std::shared_ptr<Netlist> netlist;
  VerifierOptions options;
  std::vector<CaseSpec> cases;
};

/// Quickstart demo: two registers with a deliberately slow XOR path between
/// them (one expected set-up error).
ExampleDesign quickstart();

/// The thesis' worked example (Fig 2-5): the 16x32 register file pipeline,
/// elaborated from SHDL (the two Fig 3-11 set-up errors).
ExampleDesign regfile_pipeline();

/// Gated-clock hazard (Fig 1-5) with a parameterized enable assertion.
ExampleDesign gated_clock(const std::string& enable_assertion, const std::string& name);
ExampleDesign gated_clock_day1();  // enable too late: hazard reported
ExampleDesign gated_clock_day2();  // enable path shortened: clean

/// Variable-path ALU bypass (sec. 2.7) with its two-entry case file.
ExampleDesign case_analysis_alu();

/// Self-timed module (sec. 4.2.1), step 1: the module to be measured.
ExampleDesign self_timed_module();
/// The module's measured settle delay after the request edge, in ns
/// (deterministic: obtained by running the verifier on the module).
double self_timed_module_delay_ns();
/// Step 3: the module plus a DONE delay line sized from the measurement
/// (plus 2 ns margin); the handshake check passes.
ExampleDesign self_timed_timed();
/// Cross-check: an undersized (5 ns) delay line; the handshake check fails.
ExampleDesign self_timed_undersized();

/// Section-by-section verification (sec. 2.5.2): the two sections and the
/// mismatched-consumer variant, each verifiable standalone.
VerifierOptions modular_options();
ExampleDesign modular_execute();
ExampleDesign modular_writeback();
ExampleDesign modular_writeback_mismatched();

/// Every unit above, flattened in a fixed order for the golden suite.
std::vector<ExampleDesign> all_example_designs();

}  // namespace tv::examples
