#include "example_designs.hpp"

#include "hdl/elaborate.hpp"

namespace tv::examples {

ExampleDesign quickstart() {
  ExampleDesign d;
  d.name = "quickstart";
  d.netlist = std::make_shared<Netlist>();
  Netlist& nl = *d.netlist;

  // A 40 ns cycle with 4 clock units of 10 ns each. Clock assertions are
  // written inside signal names, as in SCALD: ".P0-1" is a clock high
  // during the first clock unit, with the default precision skew of +-1 ns.
  Ref launch_clk = nl.ref("LAUNCH CLK .P0-1");
  Ref capture_clk = nl.ref("CAPTURE CLK .P2-3");

  // The launching register: its data input is an interface signal with a
  // stable assertion -- stable from unit 0 to unit 3, changing afterwards.
  Ref d0 = nl.ref("DIN .S0-3");
  Ref q0 = nl.ref("STAGE DATA");
  nl.reg("LAUNCH REG", from_ns(1.0), from_ns(3.0), d0, launch_clk, q0, /*width=*/8);

  // Two levels of combinational logic; the XOR is slow.
  Ref mid = nl.ref("MID");
  nl.and_gate("G1", from_ns(1.0), from_ns(2.5), {q0, nl.ref("EN .S0-4")}, mid, 8);
  Ref d1 = nl.ref("CAPTURE D");
  nl.xor_gate("G2 (slow)", from_ns(4.0), from_ns(9.0), {mid, q0}, d1, 8);

  // The capturing register and its set-up/hold constraint (2.0 / 1.0 ns).
  Ref q1 = nl.ref("DOUT");
  nl.reg("CAPTURE REG", from_ns(1.0), from_ns(3.0), d1, capture_clk, q1, 8);
  nl.setup_hold_chk("CAPTURE CHK", from_ns(2.0), from_ns(1.0), d1, capture_clk, 8);
  nl.finalize();

  d.options.period = from_ns(40.0);
  d.options.units = ClockUnits::from_ns_per_unit(10.0);
  d.options.default_wire = WireDelay{0, from_ns(1.0)};
  return d;
}

namespace {

const char* kRegfileSource = R"(
macro RAM_16W_10145A(SIZE) {
  param in "I<0:SIZE-1>", "A<0:3>", "WE";
  param out "DO<0:SIZE-1>";
  setup_hold [setup=4.5, hold=-1.0, width=SIZE] ("I<0:SIZE-1>", "- WE");
  setup_rise_hold_fall [setup=3.5, hold=1.0, width=4] ("A<0:3>", "WE");
  min_pulse_width [min_high=4.0] ("WE");
  chg [delay=3.0:6.0, width=SIZE] ("A<0:3>", "WE") -> "DO<0:SIZE-1>";
}

macro REG_10176(SIZE) {
  param in "I<0:SIZE-1>", "CK";
  param out "Q<0:SIZE-1>";
  reg [delay=1.5:4.5, width=SIZE] ("I<0:SIZE-1>", "CK") -> "Q<0:SIZE-1>";
  setup_hold [setup=2.5, hold=1.5, width=SIZE] ("I<0:SIZE-1>", "CK");
}

design REGFILE_EXAMPLE {
  period 50.0;
  clock_unit 6.25;
  default_wire 0.0:2.0;
  precision_skew -1.0:1.0;

  buf ("CK .P0-4 &Z") -> "ADR SEL RAW";
  buf [delay=0.3:1.2] ("ADR SEL RAW") -> "ADR SEL";
  wire_delay "ADR SEL RAW" 0:0;
  wire_delay "ADR SEL" 0:0;
  wire_delay "WRITE ADR .S0-6" 0:0;
  wire_delay "READ ADR .S4-9" 0:0;
  mux2 [delay=1.2:3.3, width=4] ("ADR SEL", "READ ADR .S4-9", "WRITE ADR .S0-6")
      -> "ADR<0:3>";
  wire_delay "ADR<0:3>" 0.0:6.0;

  and [delay=1.0:2.9] ("CK .P2-3 &H", "WRITE .S0-6") -> "WE";
  wire_delay "WE" 0:0;

  use RAM_16W_10145A [SIZE=32] ("W DATA .S0-6", "ADR<0:3>", "WE", "RAM OUT<0:31>");

  or [delay=1.0:3.0, width=32] ("RAM OUT<0:31>", "READ EN .S0-8") -> "REG DATA<0:31>";
  wire_delay "REG DATA<0:31>" 0:0;
  use REG_10176 [SIZE=32] ("REG DATA<0:31>", "REG CLK .P8-9", "REG OUT<0:31>");
}
)";

}  // namespace

ExampleDesign regfile_pipeline() {
  hdl::ElaboratedDesign design = hdl::elaborate_source(kRegfileSource);
  ExampleDesign d;
  d.name = "regfile_pipeline";
  d.netlist = std::make_shared<Netlist>(std::move(design.netlist));
  d.options = design.options;
  d.cases = std::move(design.cases);
  return d;
}

ExampleDesign gated_clock(const std::string& enable_assertion, const std::string& name) {
  ExampleDesign d;
  d.name = name;
  d.netlist = std::make_shared<Netlist>();
  Netlist& nl = *d.netlist;
  d.options.period = from_ns(50.0);
  d.options.units = ClockUnits::from_ns_per_unit(1.0);
  d.options.default_wire = WireDelay{0, 0};
  d.options.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  // REG CLOCK = CLOCK AND ENABLE; "&A" asserts that ENABLE is stable while
  // CLOCK is high and lets the clean clock shape propagate.
  Ref clock = nl.ref("CLOCK .P20-30 &A");
  Ref enable = nl.ref(enable_assertion);
  Ref reg_clock = nl.ref("REG CLOCK");
  nl.and_gate("CLOCK GATE", from_ns(1.0), from_ns(2.0), {clock, enable}, reg_clock);

  nl.reg("REG", from_ns(1.0), from_ns(3.0), nl.ref("DATA .S0-45", 16), reg_clock,
         nl.ref("Q", 16), 16);
  nl.setup_hold_chk("REG CHK", from_ns(2.0), from_ns(1.0), nl.ref("DATA .S0-45", 16),
                    reg_clock, 16);
  nl.min_pulse_width_chk("REG CK WIDTH", from_ns(4.0), from_ns(4.0), reg_clock);
  nl.finalize();
  return d;
}

ExampleDesign gated_clock_day1() {
  return gated_clock("ENABLE .S25-70", "gated_clock_day1");
}
ExampleDesign gated_clock_day2() {
  return gated_clock("ENABLE .S15-65", "gated_clock_day2");
}

ExampleDesign case_analysis_alu() {
  ExampleDesign d;
  d.name = "case_analysis_alu";
  d.netlist = std::make_shared<Netlist>();
  Netlist& nl = *d.netlist;
  d.options.period = from_ns(60.0);
  d.options.units = ClockUnits::from_ns_per_unit(10.0);
  d.options.default_wire = WireDelay{0, 0};
  d.options.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  Ref operands = nl.ref("OPERANDS .S1-5", 16);  // stable 10..50 ns

  // Slow ALU path (25-32 ns) vs fast bypass (2-4 ns), two stages of it.
  Ref bypass = nl.ref("BYPASS");
  Ref alu1 = nl.ref("ALU1 OUT", 16);
  nl.chg("ALU1", from_ns(25.0), from_ns(32.0), {operands}, alu1, 16);
  Ref fast1 = nl.ref("BYP1 OUT", 16);
  nl.buf("BYP1", from_ns(2.0), from_ns(4.0), operands, fast1, 16);
  Ref stage1 = nl.ref("STAGE1", 16);
  nl.mux2("SEL1", from_ns(1.0), from_ns(2.0), bypass, alu1, fast1, stage1, 16);

  Ref alu2 = nl.ref("ALU2 OUT", 16);
  nl.chg("ALU2", from_ns(25.0), from_ns(32.0), {stage1}, alu2, 16);
  Ref fast2 = nl.ref("BYP2 OUT", 16);
  nl.buf("BYP2", from_ns(2.0), from_ns(4.0), stage1, fast2, 16);
  Ref result = nl.ref("RESULT", 16);
  // Complementary select: when stage 1 used the ALU, stage 2 must bypass
  // (select high -> fast path, i.e. whenever BYPASS is low).
  nl.mux2("SEL2", from_ns(1.0), from_ns(2.0), nl.ref("- BYPASS"), alu2, fast2, result, 16);

  Ref ck = nl.ref("CAPTURE CLK .P5.7-6");
  nl.reg("RESULT REG", from_ns(1.0), from_ns(2.0), result, ck, nl.ref("RESULT Q", 16), 16);
  nl.setup_hold_chk("RESULT CHK", from_ns(2.0), from_ns(1.0), result, ck, 16);
  nl.finalize();

  d.cases = {
      {"BYPASS = 0", {{bypass.id, Value::Zero}}},
      {"BYPASS = 1", {{bypass.id, Value::One}}},
  };
  return d;
}

namespace {

VerifierOptions self_timed_options() {
  VerifierOptions opts;
  opts.period = from_ns(100.0);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = WireDelay{0, from_ns(1.0)};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  return opts;
}

}  // namespace

ExampleDesign self_timed_module() {
  ExampleDesign d;
  d.name = "self_timed_module";
  d.options = self_timed_options();
  d.netlist = std::make_shared<Netlist>();
  Netlist& module = *d.netlist;
  Ref req = module.ref("REQ .P10-60");  // the request strobe launches inputs
  Ref a = module.ref("IN A", 16);
  Ref b = module.ref("IN B", 16);
  module.reg("IN REG A", from_ns(1.0), from_ns(2.5), module.ref("RAW A .S0-9", 16), req, a, 16);
  module.reg("IN REG B", from_ns(1.0), from_ns(2.5), module.ref("RAW B .S0-9", 16), req, b, 16);
  Ref sum = module.ref("SUM", 16);
  module.chg("ADDER", from_ns(6.0), from_ns(14.0), {a, b}, sum, 16);
  Ref result = module.ref("RESULT", 17);
  module.chg("NORMALIZE", from_ns(3.0), from_ns(8.0), {sum}, result, 17);
  module.finalize();
  return d;
}

double self_timed_module_delay_ns() {
  ExampleDesign d = self_timed_module();
  Verifier v(*d.netlist, d.options);
  v.verify();
  const Waveform out =
      d.netlist->signal(d.netlist->ref("RESULT", 17).id).wave.with_skew_incorporated();
  Time settle = 0;
  out.settles(from_ns(10), from_ns(90), settle);
  return to_ns(settle) - 10.0;
}

ExampleDesign self_timed_timed() {
  double done_delay_ns = self_timed_module_delay_ns() + 2.0;  // engineering margin
  ExampleDesign d;
  d.name = "self_timed_timed";
  d.options = self_timed_options();
  d.netlist = std::make_shared<Netlist>();
  Netlist& timed = *d.netlist;
  Ref req2 = timed.ref("REQ .P10-60");
  Ref a2 = timed.ref("IN A", 16);
  Ref b2 = timed.ref("IN B", 16);
  timed.reg("IN REG A", from_ns(1.0), from_ns(2.5), timed.ref("RAW A .S0-9", 16), req2, a2, 16);
  timed.reg("IN REG B", from_ns(1.0), from_ns(2.5), timed.ref("RAW B .S0-9", 16), req2, b2, 16);
  Ref sum2 = timed.ref("SUM", 16);
  timed.chg("ADDER", from_ns(6.0), from_ns(14.0), {a2, b2}, sum2, 16);
  Ref result2 = timed.ref("RESULT", 17);
  timed.chg("NORMALIZE", from_ns(3.0), from_ns(8.0), {sum2}, result2, 17);
  Ref done = timed.ref("DONE");
  timed.buf("DONE DELAY", from_ns(done_delay_ns), from_ns(done_delay_ns), req2, done);
  timed.set_wire_delay(done.id, 0, 0);
  timed.setup_hold_chk("HANDSHAKE CHK", from_ns(1.0), from_ns(20.0), result2, done, 17);
  timed.finalize();
  return d;
}

ExampleDesign self_timed_undersized() {
  ExampleDesign d;
  d.name = "self_timed_undersized";
  d.options = self_timed_options();
  d.netlist = std::make_shared<Netlist>();
  Netlist& bad = *d.netlist;
  Ref req3 = bad.ref("REQ .P10-60");
  Ref a3 = bad.ref("IN A", 16);
  bad.reg("IN REG A", from_ns(1.0), from_ns(2.5), bad.ref("RAW A .S0-9", 16), req3, a3, 16);
  Ref sum3 = bad.ref("SUM", 16);
  bad.chg("ADDER", from_ns(6.0), from_ns(14.0), {a3}, sum3, 16);
  Ref done3 = bad.ref("DONE");
  bad.buf("DONE DELAY", from_ns(5.0), from_ns(5.0), req3, done3);  // too fast!
  bad.set_wire_delay(done3.id, 0, 0);
  bad.setup_hold_chk("HANDSHAKE CHK", from_ns(1.0), from_ns(20.0), sum3, done3, 16);
  bad.finalize();
  return d;
}

VerifierOptions modular_options() {
  VerifierOptions opts;
  opts.period = from_ns(50.0);
  opts.units = ClockUnits::from_ns_per_unit(6.25);
  opts.default_wire = WireDelay{0, from_ns(1.0)};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};
  return opts;
}

ExampleDesign modular_execute() {
  ExampleDesign d;
  d.name = "modular_execute";
  d.options = modular_options();
  d.netlist = std::make_shared<Netlist>();
  Netlist& execute = *d.netlist;
  Ref ck = execute.ref("EX CLK .P2-3");
  Ref operands = execute.ref("EX OPS<0:15> .S0-6", 16);
  Ref latched = execute.ref("EX LATCHED /M", 16);
  execute.reg("EX REG", from_ns(1.0), from_ns(3.0), operands, ck, latched, 16);
  Ref alu = execute.ref("EX ALU OUT /M", 16);
  execute.chg("EX ALU", from_ns(2.0), from_ns(5.0), {latched}, alu, 16);
  execute.buf("EX DRV", from_ns(0.5), from_ns(1.5), alu,
              execute.ref("EX RESULT<0:15> .S4-9", 16), 16);
  execute.finalize();
  return d;
}

ExampleDesign modular_writeback() {
  ExampleDesign d;
  d.name = "modular_writeback";
  d.options = modular_options();
  d.netlist = std::make_shared<Netlist>();
  Netlist& writeback = *d.netlist;
  Ref bus = writeback.ref("EX RESULT<0:15> .S4-9", 16);
  Ref ck = writeback.ref("WB CLK .P7-8");
  writeback.reg("WB REG", from_ns(1.0), from_ns(3.0), bus, ck,
                writeback.ref("WB OUT<0:15>", 16), 16);
  writeback.setup_hold_chk("WB CHK", from_ns(2.0), from_ns(1.0), bus, ck, 16);
  writeback.finalize();
  return d;
}

ExampleDesign modular_writeback_mismatched() {
  ExampleDesign d;
  d.name = "modular_writeback_mismatched";
  d.options = modular_options();
  d.netlist = std::make_shared<Netlist>();
  Netlist& writeback2 = *d.netlist;
  Ref bus = writeback2.ref("EX RESULT<0:15> .S3-9", 16);  // assumes more!
  Ref ck = writeback2.ref("WB CLK .P7-8");
  writeback2.reg("WB REG", from_ns(1.0), from_ns(3.0), bus, ck,
                 writeback2.ref("WB OUT<0:15>", 16), 16);
  writeback2.finalize();
  return d;
}

std::vector<ExampleDesign> all_example_designs() {
  std::vector<ExampleDesign> all;
  all.push_back(quickstart());
  all.push_back(regfile_pipeline());
  all.push_back(gated_clock_day1());
  all.push_back(gated_clock_day2());
  all.push_back(case_analysis_alu());
  all.push_back(self_timed_module());
  all.push_back(self_timed_timed());
  all.push_back(self_timed_undersized());
  all.push_back(modular_execute());
  all.push_back(modular_writeback());
  all.push_back(modular_writeback_mismatched());
  return all;
}

}  // namespace tv::examples
