// Gated-clock hazard detection (Fig 1-5): a register clock gated by an
// enable that arrives too late. Shows the "&A" evaluation directive
// catching the hazard, then the corrected design passing -- the day-by-day
// design loop the thesis advocates ("advance the design for about a day,
// then ... check all of the timing constraints").
//
//   $ ./gated_clock_hazard
#include <cstdio>

#include "core/verifier.hpp"

namespace {

std::size_t check(const char* enable_assertion, bool print) {
  using namespace tv;
  Netlist nl;
  VerifierOptions opts;
  opts.period = from_ns(50.0);
  opts.units = ClockUnits::from_ns_per_unit(1.0);
  opts.default_wire = WireDelay{0, 0};
  opts.assertion_defaults = AssertionDefaults{0, 0, 0, 0};

  // REG CLOCK = CLOCK AND ENABLE; "&A" asserts that ENABLE is stable while
  // CLOCK is high and lets the clean clock shape propagate.
  Ref clock = nl.ref("CLOCK .P20-30 &A");
  Ref enable = nl.ref(enable_assertion);
  Ref reg_clock = nl.ref("REG CLOCK");
  nl.and_gate("CLOCK GATE", from_ns(1.0), from_ns(2.0), {clock, enable}, reg_clock);

  nl.reg("REG", from_ns(1.0), from_ns(3.0), nl.ref("DATA .S0-45", 16), reg_clock,
         nl.ref("Q", 16), 16);
  nl.setup_hold_chk("REG CHK", from_ns(2.0), from_ns(1.0), nl.ref("DATA .S0-45", 16),
                    reg_clock, 16);
  nl.min_pulse_width_chk("REG CK WIDTH", from_ns(4.0), from_ns(4.0), reg_clock);
  nl.finalize();

  Verifier verifier(nl, opts);
  VerifyResult r = verifier.verify();
  if (print) {
    std::printf("ENABLE = \"%s\":\n", enable_assertion);
    std::printf("%s\n", violations_report(r.violations).c_str());
  }
  return r.violations.size();
}

}  // namespace

int main() {
  std::printf("--- day 1: enable generated too late -------------------------\n");
  std::size_t buggy = check("ENABLE .S25-70", true);

  std::printf("--- day 2: enable path shortened, stable from 15 ns ----------\n");
  std::size_t fixed = check("ENABLE .S15-65", true);

  std::printf("day 1 errors: %zu, day 2 errors: %zu\n", buggy, fixed);
  return (buggy > 0 && fixed == 0) ? 0 : 1;
}
