// Gated-clock hazard detection (Fig 1-5): a register clock gated by an
// enable that arrives too late. Shows the "&A" evaluation directive
// catching the hazard, then the corrected design passing -- the day-by-day
// design loop the thesis advocates ("advance the design for about a day,
// then ... check all of the timing constraints"). The circuits are built by
// example_designs.cpp, shared with the golden-report suite.
//
//   $ ./gated_clock_hazard
#include <cstdio>

#include "core/verifier.hpp"
#include "example_designs.hpp"

namespace {

std::size_t check(tv::examples::ExampleDesign d, const char* enable_assertion) {
  using namespace tv;
  Verifier verifier(*d.netlist, d.options);
  VerifyResult r = verifier.verify();
  std::printf("ENABLE = \"%s\":\n", enable_assertion);
  std::printf("%s\n", violations_report(r.violations).c_str());
  return r.violations.size();
}

}  // namespace

int main() {
  using namespace tv;
  std::printf("--- day 1: enable generated too late -------------------------\n");
  std::size_t buggy = check(examples::gated_clock_day1(), "ENABLE .S25-70");

  std::printf("--- day 2: enable path shortened, stable from 15 ns ----------\n");
  std::size_t fixed = check(examples::gated_clock_day2(), "ENABLE .S15-65");

  std::printf("day 1 errors: %zu, day 2 errors: %zu\n", buggy, fixed);
  return (buggy > 0 && fixed == 0) ? 0 : 1;
}
