// The thesis' own worked example (Fig 2-5), written in the SHDL hardware
// description language and verified end-to-end: a 16-word by 32-bit
// register file, an address multiplexer driven by a clock, a gated write
// enable with an "&H" hazard check, and an output register. Produces the
// Fig 3-10 signal listing and the two Fig 3-11 set-up errors. The SHDL
// source lives in example_designs.cpp, shared with the golden-report suite.
//
//   $ ./regfile_pipeline
#include <cstdio>

#include "core/verifier.hpp"
#include "example_designs.hpp"

int main() {
  using namespace tv;
  examples::ExampleDesign d = examples::regfile_pipeline();
  std::printf("design REGFILE_EXAMPLE: %zu primitives\n\n", d.netlist->num_prims());

  Verifier verifier(*d.netlist, d.options);
  VerifyResult result = verifier.verify(d.cases);

  std::printf("%s\n", timing_summary(*d.netlist).c_str());
  std::printf("%s", violations_report(result.violations).c_str());
  std::printf("\nExpected: the two Fig 3-11 errors (address set-up missed by the\n"
              "full 3.5 ns at 11.5 ns; register set-up of 2.5 ns missed by 1.0 ns\n"
              "with data stable at 47.5 and clock rising at 49.0).\n");
  return result.violations.size() == 2 ? 0 : 1;
}
