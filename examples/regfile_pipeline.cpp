// The thesis' own worked example (Fig 2-5), written in the SHDL hardware
// description language and verified end-to-end: a 16-word by 32-bit
// register file, an address multiplexer driven by a clock, a gated write
// enable with an "&H" hazard check, and an output register. Produces the
// Fig 3-10 signal listing and the two Fig 3-11 set-up errors.
//
//   $ ./regfile_pipeline
#include <cstdio>

#include "core/verifier.hpp"
#include "hdl/elaborate.hpp"

static const char* kSource = R"(
macro RAM_16W_10145A(SIZE) {
  param in "I<0:SIZE-1>", "A<0:3>", "WE";
  param out "DO<0:SIZE-1>";
  setup_hold [setup=4.5, hold=-1.0, width=SIZE] ("I<0:SIZE-1>", "- WE");
  setup_rise_hold_fall [setup=3.5, hold=1.0, width=4] ("A<0:3>", "WE");
  min_pulse_width [min_high=4.0] ("WE");
  chg [delay=3.0:6.0, width=SIZE] ("A<0:3>", "WE") -> "DO<0:SIZE-1>";
}

macro REG_10176(SIZE) {
  param in "I<0:SIZE-1>", "CK";
  param out "Q<0:SIZE-1>";
  reg [delay=1.5:4.5, width=SIZE] ("I<0:SIZE-1>", "CK") -> "Q<0:SIZE-1>";
  setup_hold [setup=2.5, hold=1.5, width=SIZE] ("I<0:SIZE-1>", "CK");
}

design REGFILE_EXAMPLE {
  period 50.0;
  clock_unit 6.25;
  default_wire 0.0:2.0;
  precision_skew -1.0:1.0;

  buf ("CK .P0-4 &Z") -> "ADR SEL RAW";
  buf [delay=0.3:1.2] ("ADR SEL RAW") -> "ADR SEL";
  wire_delay "ADR SEL RAW" 0:0;
  wire_delay "ADR SEL" 0:0;
  wire_delay "WRITE ADR .S0-6" 0:0;
  wire_delay "READ ADR .S4-9" 0:0;
  mux2 [delay=1.2:3.3, width=4] ("ADR SEL", "READ ADR .S4-9", "WRITE ADR .S0-6")
      -> "ADR<0:3>";
  wire_delay "ADR<0:3>" 0.0:6.0;

  and [delay=1.0:2.9] ("CK .P2-3 &H", "WRITE .S0-6") -> "WE";
  wire_delay "WE" 0:0;

  use RAM_16W_10145A [SIZE=32] ("W DATA .S0-6", "ADR<0:3>", "WE", "RAM OUT<0:31>");

  or [delay=1.0:3.0, width=32] ("RAM OUT<0:31>", "READ EN .S0-8") -> "REG DATA<0:31>";
  wire_delay "REG DATA<0:31>" 0:0;
  use REG_10176 [SIZE=32] ("REG DATA<0:31>", "REG CLK .P8-9", "REG OUT<0:31>");
}
)";

int main() {
  using namespace tv;
  hdl::ElaboratedDesign design = hdl::elaborate_source(kSource);
  std::printf("design %s: %zu primitives from %zu macro instances\n\n",
              design.name.c_str(), design.summary.primitives,
              design.summary.macro_instances);

  Verifier verifier(design.netlist, design.options);
  VerifyResult result = verifier.verify(design.cases);

  std::printf("%s\n", timing_summary(design.netlist).c_str());
  std::printf("%s", violations_report(result.violations).c_str());
  std::printf("\nExpected: the two Fig 3-11 errors (address set-up missed by the\n"
              "full 3.5 ns at 11.5 ns; register set-up of 2.5 ns missed by 1.0 ns\n"
              "with data stable at 47.5 and clock rising at 49.0).\n");
  return result.violations.size() == 2 ? 0 : 1;
}
