// Quickstart: build a small synchronous circuit with the programmatic API,
// verify its timing constraints, and print the reports.
//
//   $ ./quickstart
//
// The circuit (built in example_designs.cpp): a register launches data at
// the start of the cycle, the data passes two gates, and a second register
// captures it near the end. One path is deliberately too slow, so the
// verifier reports a set-up error.
#include <cstdio>

#include "core/verifier.hpp"
#include "example_designs.hpp"

int main() {
  using namespace tv;

  examples::ExampleDesign d = examples::quickstart();
  Verifier verifier(*d.netlist, d.options);
  VerifyResult result = verifier.verify();

  std::printf("%s\n", timing_summary(*d.netlist).c_str());
  std::printf("%s", violations_report(result.violations).c_str());
  std::printf("\nevents processed: %zu, converged: %s\n", result.base_events,
              result.converged ? "yes" : "no");
  return result.violations.empty() ? 1 : 0;  // this demo *expects* the error
}
