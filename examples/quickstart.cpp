// Quickstart: build a small synchronous circuit with the programmatic API,
// verify its timing constraints, and print the reports.
//
//   $ ./quickstart
//
// The circuit: a register launches data at the start of the cycle, the data
// passes two gates, and a second register captures it near the end. One
// path is deliberately too slow, so the verifier reports a set-up error.
#include <cstdio>

#include "core/verifier.hpp"

int main() {
  using namespace tv;

  Netlist nl;

  // A 40 ns cycle with 4 clock units of 10 ns each. Clock assertions are
  // written inside signal names, as in SCALD: ".P0-1" is a clock high
  // during the first clock unit, with the default precision skew of +-1 ns.
  Ref launch_clk = nl.ref("LAUNCH CLK .P0-1");
  Ref capture_clk = nl.ref("CAPTURE CLK .P2-3");

  // The launching register: its data input is an interface signal with a
  // stable assertion -- stable from unit 0 to unit 3, changing afterwards.
  Ref d0 = nl.ref("DIN .S0-3");
  Ref q0 = nl.ref("STAGE DATA");
  nl.reg("LAUNCH REG", from_ns(1.0), from_ns(3.0), d0, launch_clk, q0, /*width=*/8);

  // Two levels of combinational logic; the XOR is slow.
  Ref mid = nl.ref("MID");
  nl.and_gate("G1", from_ns(1.0), from_ns(2.5), {q0, nl.ref("EN .S0-4")}, mid, 8);
  Ref d1 = nl.ref("CAPTURE D");
  nl.xor_gate("G2 (slow)", from_ns(4.0), from_ns(9.0), {mid, q0}, d1, 8);

  // The capturing register and its set-up/hold constraint (2.0 / 1.0 ns).
  Ref q1 = nl.ref("DOUT");
  nl.reg("CAPTURE REG", from_ns(1.0), from_ns(3.0), d1, capture_clk, q1, 8);
  nl.setup_hold_chk("CAPTURE CHK", from_ns(2.0), from_ns(1.0), d1, capture_clk, 8);
  nl.finalize();

  VerifierOptions opts;
  opts.period = from_ns(40.0);
  opts.units = ClockUnits::from_ns_per_unit(10.0);
  opts.default_wire = WireDelay{0, from_ns(1.0)};

  Verifier verifier(nl, opts);
  VerifyResult result = verifier.verify();

  std::printf("%s\n", timing_summary(nl).c_str());
  std::printf("%s", violations_report(result.violations).c_str());
  std::printf("\nevents processed: %zu, converged: %s\n", result.base_events,
              result.converged ? "yes" : "no");
  return result.violations.empty() ? 1 : 0;  // this demo *expects* the error
}
