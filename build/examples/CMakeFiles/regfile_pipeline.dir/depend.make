# Empty dependencies file for regfile_pipeline.
# This may be replaced when dependencies are built.
