file(REMOVE_RECURSE
  "CMakeFiles/regfile_pipeline.dir/regfile_pipeline.cpp.o"
  "CMakeFiles/regfile_pipeline.dir/regfile_pipeline.cpp.o.d"
  "regfile_pipeline"
  "regfile_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regfile_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
