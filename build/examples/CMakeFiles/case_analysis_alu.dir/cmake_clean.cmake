file(REMOVE_RECURSE
  "CMakeFiles/case_analysis_alu.dir/case_analysis_alu.cpp.o"
  "CMakeFiles/case_analysis_alu.dir/case_analysis_alu.cpp.o.d"
  "case_analysis_alu"
  "case_analysis_alu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_analysis_alu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
