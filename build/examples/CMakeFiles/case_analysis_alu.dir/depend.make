# Empty dependencies file for case_analysis_alu.
# This may be replaced when dependencies are built.
