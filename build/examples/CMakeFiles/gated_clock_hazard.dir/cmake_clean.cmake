file(REMOVE_RECURSE
  "CMakeFiles/gated_clock_hazard.dir/gated_clock_hazard.cpp.o"
  "CMakeFiles/gated_clock_hazard.dir/gated_clock_hazard.cpp.o.d"
  "gated_clock_hazard"
  "gated_clock_hazard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gated_clock_hazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
