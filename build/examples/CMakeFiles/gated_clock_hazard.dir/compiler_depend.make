# Empty compiler generated dependencies file for gated_clock_hazard.
# This may be replaced when dependencies are built.
