file(REMOVE_RECURSE
  "CMakeFiles/self_timed_module.dir/self_timed_module.cpp.o"
  "CMakeFiles/self_timed_module.dir/self_timed_module.cpp.o.d"
  "self_timed_module"
  "self_timed_module.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_timed_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
