# Empty dependencies file for self_timed_module.
# This may be replaced when dependencies are built.
