file(REMOVE_RECURSE
  "CMakeFiles/modular_verification.dir/modular_verification.cpp.o"
  "CMakeFiles/modular_verification.dir/modular_verification.cpp.o.d"
  "modular_verification"
  "modular_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modular_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
