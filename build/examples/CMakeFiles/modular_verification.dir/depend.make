# Empty dependencies file for modular_verification.
# This may be replaced when dependencies are built.
