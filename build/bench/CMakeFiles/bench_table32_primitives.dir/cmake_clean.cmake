file(REMOVE_RECURSE
  "CMakeFiles/bench_table32_primitives.dir/bench_table32_primitives.cpp.o"
  "CMakeFiles/bench_table32_primitives.dir/bench_table32_primitives.cpp.o.d"
  "bench_table32_primitives"
  "bench_table32_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table32_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
