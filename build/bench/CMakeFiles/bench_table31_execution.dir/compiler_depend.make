# Empty compiler generated dependencies file for bench_table31_execution.
# This may be replaced when dependencies are built.
