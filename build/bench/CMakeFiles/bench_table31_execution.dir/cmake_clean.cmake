file(REMOVE_RECURSE
  "CMakeFiles/bench_table31_execution.dir/bench_table31_execution.cpp.o"
  "CMakeFiles/bench_table31_execution.dir/bench_table31_execution.cpp.o.d"
  "bench_table31_execution"
  "bench_table31_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table31_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
