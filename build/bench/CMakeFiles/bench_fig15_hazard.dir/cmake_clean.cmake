file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_hazard.dir/bench_fig15_hazard.cpp.o"
  "CMakeFiles/bench_fig15_hazard.dir/bench_fig15_hazard.cpp.o.d"
  "bench_fig15_hazard"
  "bench_fig15_hazard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_hazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
