
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15_hazard.cpp" "bench/CMakeFiles/bench_fig15_hazard.dir/bench_fig15_hazard.cpp.o" "gcc" "bench/CMakeFiles/bench_fig15_hazard.dir/bench_fig15_hazard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/tv_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pathsearch/CMakeFiles/tv_pathsearch.dir/DependInfo.cmake"
  "/root/repo/build/src/stat/CMakeFiles/tv_stat.dir/DependInfo.cmake"
  "/root/repo/build/src/physical/CMakeFiles/tv_physical.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/tv_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
