# Empty dependencies file for bench_fig25_regfile.
# This may be replaced when dependencies are built.
