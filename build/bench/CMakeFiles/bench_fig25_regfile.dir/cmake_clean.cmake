file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_regfile.dir/bench_fig25_regfile.cpp.o"
  "CMakeFiles/bench_fig25_regfile.dir/bench_fig25_regfile.cpp.o.d"
  "bench_fig25_regfile"
  "bench_fig25_regfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
