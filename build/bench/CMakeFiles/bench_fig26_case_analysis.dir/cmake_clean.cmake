file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_case_analysis.dir/bench_fig26_case_analysis.cpp.o"
  "CMakeFiles/bench_fig26_case_analysis.dir/bench_fig26_case_analysis.cpp.o.d"
  "bench_fig26_case_analysis"
  "bench_fig26_case_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_case_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
