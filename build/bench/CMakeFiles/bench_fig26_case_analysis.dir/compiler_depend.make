# Empty compiler generated dependencies file for bench_fig26_case_analysis.
# This may be replaced when dependencies are built.
