# Empty dependencies file for bench_fig41_correlation.
# This may be replaced when dependencies are built.
