# Empty compiler generated dependencies file for bench_modular.
# This may be replaced when dependencies are built.
