# Empty compiler generated dependencies file for bench_table33_storage.
# This may be replaced when dependencies are built.
