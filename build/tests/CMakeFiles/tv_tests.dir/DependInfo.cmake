
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assertion.cpp" "tests/CMakeFiles/tv_tests.dir/test_assertion.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_assertion.cpp.o.d"
  "/root/repo/tests/test_case_analysis.cpp" "tests/CMakeFiles/tv_tests.dir/test_case_analysis.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_case_analysis.cpp.o.d"
  "/root/repo/tests/test_checker.cpp" "tests/CMakeFiles/tv_tests.dir/test_checker.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_checker.cpp.o.d"
  "/root/repo/tests/test_correlation.cpp" "tests/CMakeFiles/tv_tests.dir/test_correlation.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_correlation.cpp.o.d"
  "/root/repo/tests/test_cross_validation.cpp" "tests/CMakeFiles/tv_tests.dir/test_cross_validation.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_cross_validation.cpp.o.d"
  "/root/repo/tests/test_diff.cpp" "tests/CMakeFiles/tv_tests.dir/test_diff.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_diff.cpp.o.d"
  "/root/repo/tests/test_evaluator.cpp" "tests/CMakeFiles/tv_tests.dir/test_evaluator.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_evaluator.cpp.o.d"
  "/root/repo/tests/test_explain.cpp" "tests/CMakeFiles/tv_tests.dir/test_explain.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_explain.cpp.o.d"
  "/root/repo/tests/test_export.cpp" "tests/CMakeFiles/tv_tests.dir/test_export.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_export.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/tv_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_hazard.cpp" "tests/CMakeFiles/tv_tests.dir/test_hazard.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_hazard.cpp.o.d"
  "/root/repo/tests/test_hdl.cpp" "tests/CMakeFiles/tv_tests.dir/test_hdl.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_hdl.cpp.o.d"
  "/root/repo/tests/test_interconnect.cpp" "tests/CMakeFiles/tv_tests.dir/test_interconnect.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_interconnect.cpp.o.d"
  "/root/repo/tests/test_logic_sim.cpp" "tests/CMakeFiles/tv_tests.dir/test_logic_sim.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_logic_sim.cpp.o.d"
  "/root/repo/tests/test_modular.cpp" "tests/CMakeFiles/tv_tests.dir/test_modular.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_modular.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/tv_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_path_search.cpp" "tests/CMakeFiles/tv_tests.dir/test_path_search.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_path_search.cpp.o.d"
  "/root/repo/tests/test_primitives.cpp" "tests/CMakeFiles/tv_tests.dir/test_primitives.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_primitives.cpp.o.d"
  "/root/repo/tests/test_regfile_example.cpp" "tests/CMakeFiles/tv_tests.dir/test_regfile_example.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_regfile_example.cpp.o.d"
  "/root/repo/tests/test_register_properties.cpp" "tests/CMakeFiles/tv_tests.dir/test_register_properties.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_register_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/tv_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rise_fall.cpp" "tests/CMakeFiles/tv_tests.dir/test_rise_fall.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_rise_fall.cpp.o.d"
  "/root/repo/tests/test_s1_design.cpp" "tests/CMakeFiles/tv_tests.dir/test_s1_design.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_s1_design.cpp.o.d"
  "/root/repo/tests/test_sim_integration.cpp" "tests/CMakeFiles/tv_tests.dir/test_sim_integration.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_sim_integration.cpp.o.d"
  "/root/repo/tests/test_stat_timing.cpp" "tests/CMakeFiles/tv_tests.dir/test_stat_timing.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_stat_timing.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/tv_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_value.cpp" "tests/CMakeFiles/tv_tests.dir/test_value.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_value.cpp.o.d"
  "/root/repo/tests/test_waveform.cpp" "tests/CMakeFiles/tv_tests.dir/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_waveform.cpp.o.d"
  "/root/repo/tests/test_waveform_properties.cpp" "tests/CMakeFiles/tv_tests.dir/test_waveform_properties.cpp.o" "gcc" "tests/CMakeFiles/tv_tests.dir/test_waveform_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/tv_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/tv_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pathsearch/CMakeFiles/tv_pathsearch.dir/DependInfo.cmake"
  "/root/repo/build/src/stat/CMakeFiles/tv_stat.dir/DependInfo.cmake"
  "/root/repo/build/src/physical/CMakeFiles/tv_physical.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
