# Empty compiler generated dependencies file for tv_tests.
# This may be replaced when dependencies are built.
