file(REMOVE_RECURSE
  "CMakeFiles/tv_sim.dir/logic_sim.cpp.o"
  "CMakeFiles/tv_sim.dir/logic_sim.cpp.o.d"
  "libtv_sim.a"
  "libtv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
