file(REMOVE_RECURSE
  "libtv_sim.a"
)
