file(REMOVE_RECURSE
  "libtv_stat.a"
)
