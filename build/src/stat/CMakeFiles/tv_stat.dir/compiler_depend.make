# Empty compiler generated dependencies file for tv_stat.
# This may be replaced when dependencies are built.
