file(REMOVE_RECURSE
  "CMakeFiles/tv_stat.dir/stat_timing.cpp.o"
  "CMakeFiles/tv_stat.dir/stat_timing.cpp.o.d"
  "libtv_stat.a"
  "libtv_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
