file(REMOVE_RECURSE
  "libtv_hdl.a"
)
