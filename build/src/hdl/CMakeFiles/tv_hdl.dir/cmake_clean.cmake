file(REMOVE_RECURSE
  "CMakeFiles/tv_hdl.dir/elaborate.cpp.o"
  "CMakeFiles/tv_hdl.dir/elaborate.cpp.o.d"
  "CMakeFiles/tv_hdl.dir/lexer.cpp.o"
  "CMakeFiles/tv_hdl.dir/lexer.cpp.o.d"
  "CMakeFiles/tv_hdl.dir/parser.cpp.o"
  "CMakeFiles/tv_hdl.dir/parser.cpp.o.d"
  "CMakeFiles/tv_hdl.dir/stdlib.cpp.o"
  "CMakeFiles/tv_hdl.dir/stdlib.cpp.o.d"
  "libtv_hdl.a"
  "libtv_hdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_hdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
