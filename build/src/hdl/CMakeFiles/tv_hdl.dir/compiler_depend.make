# Empty compiler generated dependencies file for tv_hdl.
# This may be replaced when dependencies are built.
