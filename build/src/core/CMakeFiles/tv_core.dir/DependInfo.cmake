
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assertion.cpp" "src/core/CMakeFiles/tv_core.dir/assertion.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/assertion.cpp.o.d"
  "/root/repo/src/core/checker.cpp" "src/core/CMakeFiles/tv_core.dir/checker.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/checker.cpp.o.d"
  "/root/repo/src/core/diff.cpp" "src/core/CMakeFiles/tv_core.dir/diff.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/diff.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/tv_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/explain.cpp" "src/core/CMakeFiles/tv_core.dir/explain.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/explain.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/tv_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/export.cpp.o.d"
  "/root/repo/src/core/modular.cpp" "src/core/CMakeFiles/tv_core.dir/modular.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/modular.cpp.o.d"
  "/root/repo/src/core/netlist.cpp" "src/core/CMakeFiles/tv_core.dir/netlist.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/netlist.cpp.o.d"
  "/root/repo/src/core/primitives.cpp" "src/core/CMakeFiles/tv_core.dir/primitives.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/primitives.cpp.o.d"
  "/root/repo/src/core/storage_stats.cpp" "src/core/CMakeFiles/tv_core.dir/storage_stats.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/storage_stats.cpp.o.d"
  "/root/repo/src/core/value.cpp" "src/core/CMakeFiles/tv_core.dir/value.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/value.cpp.o.d"
  "/root/repo/src/core/verifier.cpp" "src/core/CMakeFiles/tv_core.dir/verifier.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/verifier.cpp.o.d"
  "/root/repo/src/core/waveform.cpp" "src/core/CMakeFiles/tv_core.dir/waveform.cpp.o" "gcc" "src/core/CMakeFiles/tv_core.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
