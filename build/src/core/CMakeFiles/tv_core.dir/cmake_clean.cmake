file(REMOVE_RECURSE
  "CMakeFiles/tv_core.dir/assertion.cpp.o"
  "CMakeFiles/tv_core.dir/assertion.cpp.o.d"
  "CMakeFiles/tv_core.dir/checker.cpp.o"
  "CMakeFiles/tv_core.dir/checker.cpp.o.d"
  "CMakeFiles/tv_core.dir/diff.cpp.o"
  "CMakeFiles/tv_core.dir/diff.cpp.o.d"
  "CMakeFiles/tv_core.dir/evaluator.cpp.o"
  "CMakeFiles/tv_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/tv_core.dir/explain.cpp.o"
  "CMakeFiles/tv_core.dir/explain.cpp.o.d"
  "CMakeFiles/tv_core.dir/export.cpp.o"
  "CMakeFiles/tv_core.dir/export.cpp.o.d"
  "CMakeFiles/tv_core.dir/modular.cpp.o"
  "CMakeFiles/tv_core.dir/modular.cpp.o.d"
  "CMakeFiles/tv_core.dir/netlist.cpp.o"
  "CMakeFiles/tv_core.dir/netlist.cpp.o.d"
  "CMakeFiles/tv_core.dir/primitives.cpp.o"
  "CMakeFiles/tv_core.dir/primitives.cpp.o.d"
  "CMakeFiles/tv_core.dir/storage_stats.cpp.o"
  "CMakeFiles/tv_core.dir/storage_stats.cpp.o.d"
  "CMakeFiles/tv_core.dir/value.cpp.o"
  "CMakeFiles/tv_core.dir/value.cpp.o.d"
  "CMakeFiles/tv_core.dir/verifier.cpp.o"
  "CMakeFiles/tv_core.dir/verifier.cpp.o.d"
  "CMakeFiles/tv_core.dir/waveform.cpp.o"
  "CMakeFiles/tv_core.dir/waveform.cpp.o.d"
  "libtv_core.a"
  "libtv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
