file(REMOVE_RECURSE
  "libtv_core.a"
)
