file(REMOVE_RECURSE
  "CMakeFiles/tv_util.dir/stats.cpp.o"
  "CMakeFiles/tv_util.dir/stats.cpp.o.d"
  "CMakeFiles/tv_util.dir/strings.cpp.o"
  "CMakeFiles/tv_util.dir/strings.cpp.o.d"
  "CMakeFiles/tv_util.dir/time.cpp.o"
  "CMakeFiles/tv_util.dir/time.cpp.o.d"
  "libtv_util.a"
  "libtv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
