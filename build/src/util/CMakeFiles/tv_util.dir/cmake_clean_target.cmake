file(REMOVE_RECURSE
  "libtv_util.a"
)
