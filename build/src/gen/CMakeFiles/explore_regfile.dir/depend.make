# Empty dependencies file for explore_regfile.
# This may be replaced when dependencies are built.
