file(REMOVE_RECURSE
  "CMakeFiles/explore_regfile.dir/__/__/tools/explore_regfile.cpp.o"
  "CMakeFiles/explore_regfile.dir/__/__/tools/explore_regfile.cpp.o.d"
  "explore_regfile"
  "explore_regfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
