
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/regfile_example.cpp" "src/gen/CMakeFiles/tv_gen.dir/regfile_example.cpp.o" "gcc" "src/gen/CMakeFiles/tv_gen.dir/regfile_example.cpp.o.d"
  "/root/repo/src/gen/s1_design.cpp" "src/gen/CMakeFiles/tv_gen.dir/s1_design.cpp.o" "gcc" "src/gen/CMakeFiles/tv_gen.dir/s1_design.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/tv_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
