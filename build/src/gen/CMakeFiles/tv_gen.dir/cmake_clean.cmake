file(REMOVE_RECURSE
  "CMakeFiles/tv_gen.dir/regfile_example.cpp.o"
  "CMakeFiles/tv_gen.dir/regfile_example.cpp.o.d"
  "CMakeFiles/tv_gen.dir/s1_design.cpp.o"
  "CMakeFiles/tv_gen.dir/s1_design.cpp.o.d"
  "libtv_gen.a"
  "libtv_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
