# Empty dependencies file for tv_gen.
# This may be replaced when dependencies are built.
