file(REMOVE_RECURSE
  "libtv_gen.a"
)
