# Empty compiler generated dependencies file for scaldtv.
# This may be replaced when dependencies are built.
