file(REMOVE_RECURSE
  "CMakeFiles/scaldtv.dir/__/__/tools/scaldtv.cpp.o"
  "CMakeFiles/scaldtv.dir/__/__/tools/scaldtv.cpp.o.d"
  "scaldtv"
  "scaldtv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaldtv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
