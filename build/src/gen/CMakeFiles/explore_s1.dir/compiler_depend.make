# Empty compiler generated dependencies file for explore_s1.
# This may be replaced when dependencies are built.
