file(REMOVE_RECURSE
  "CMakeFiles/explore_s1.dir/__/__/tools/explore_s1.cpp.o"
  "CMakeFiles/explore_s1.dir/__/__/tools/explore_s1.cpp.o.d"
  "explore_s1"
  "explore_s1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_s1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
