file(REMOVE_RECURSE
  "CMakeFiles/tv_physical.dir/interconnect.cpp.o"
  "CMakeFiles/tv_physical.dir/interconnect.cpp.o.d"
  "libtv_physical.a"
  "libtv_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
