# Empty compiler generated dependencies file for tv_physical.
# This may be replaced when dependencies are built.
