file(REMOVE_RECURSE
  "libtv_physical.a"
)
