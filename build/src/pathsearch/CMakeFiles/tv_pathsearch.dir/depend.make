# Empty dependencies file for tv_pathsearch.
# This may be replaced when dependencies are built.
