file(REMOVE_RECURSE
  "CMakeFiles/tv_pathsearch.dir/path_search.cpp.o"
  "CMakeFiles/tv_pathsearch.dir/path_search.cpp.o.d"
  "libtv_pathsearch.a"
  "libtv_pathsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_pathsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
