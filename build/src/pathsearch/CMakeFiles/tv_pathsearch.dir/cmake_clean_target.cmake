file(REMOVE_RECURSE
  "libtv_pathsearch.a"
)
